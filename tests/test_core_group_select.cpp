#include "core/group_select.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::core {
namespace {

using model::Instance;

TEST(GroupSelect, ValidatesGroupVectorSize) {
  const Instance inst = model::build_cap_instance(
      {1.0}, 2.0, {5.0}, {{0, 0, 1.0}});
  const GroupId groups[] = {0, 1};  // too many
  EXPECT_THROW(solve_with_groups(inst, groups), std::invalid_argument);
}

TEST(GroupSelect, PicksOneVariantPerGroup) {
  // One channel in two variants (both affordable, both wanted): the
  // constrained solution must carry exactly one.
  const Instance inst = model::build_cap_instance(
      {1.0, 2.0}, 10.0, {100.0},
      {{0, 0, 3.0}, {0, 1, 5.0}});
  const GroupId groups[] = {7, 7};
  const GroupSelectResult r = solve_with_groups(inst, groups);
  EXPECT_TRUE(satisfies_group_constraint(r.assignment, groups));
  EXPECT_EQ(r.assignment.range_size(), 1u);
  EXPECT_DOUBLE_EQ(r.utility, 5.0) << "the better variant wins";
  EXPECT_EQ(r.groups_used, 1u);
}

TEST(GroupSelect, UngroupedStreamsUnaffected) {
  const Instance inst = model::build_cap_instance(
      {1.0, 1.0, 1.0}, 10.0, {100.0},
      {{0, 0, 3.0}, {0, 1, 2.0}, {0, 2, 4.0}});
  const GroupId groups[] = {kNoGroup, kNoGroup, kNoGroup};
  const GroupSelectResult r = solve_with_groups(inst, groups);
  EXPECT_DOUBLE_EQ(r.utility, 9.0) << "no constraint, everything carried";
  EXPECT_EQ(r.variants_dropped, 0u);
}

TEST(GroupSelect, FreedBudgetReusedForOtherGroups) {
  // Two variants of channel A (cost 3 each) and a cheap channel B. Budget
  // 4: unconstrained would carry both A variants (utility 3+3=6 > 3+2);
  // the group constraint forces one A, and augmentation must then pull in
  // B with the freed budget.
  const Instance inst = model::build_cap_instance(
      {3.0, 3.0, 1.0}, 6.0, {100.0},
      {{0, 0, 3.0}, {0, 1, 3.0}, {0, 2, 2.0}});
  const GroupId groups[] = {1, 1, kNoGroup};
  const GroupSelectResult r = solve_with_groups(inst, groups);
  EXPECT_TRUE(satisfies_group_constraint(r.assignment, groups));
  EXPECT_TRUE(r.assignment.in_range(2)) << "channel B picked up";
  EXPECT_DOUBLE_EQ(r.utility, 5.0);
}

TEST(GroupSelect, ConstraintHoldsOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    gen::RandomMmdConfig cfg;
    cfg.num_streams = 24;
    cfg.num_users = 10;
    cfg.num_server_measures = 2;
    cfg.num_user_measures = 2;
    cfg.budget_fraction = 0.4;
    cfg.seed = seed;
    const Instance inst = gen::random_mmd_instance(cfg);
    // Groups of 3 consecutive streams (8 channels x 3 variants).
    std::vector<GroupId> groups(inst.num_streams());
    for (std::size_t s = 0; s < groups.size(); ++s)
      groups[s] = static_cast<GroupId>(s / 3);
    const GroupSelectResult r = solve_with_groups(inst, groups);
    EXPECT_TRUE(satisfies_group_constraint(r.assignment, groups))
        << "seed " << seed;
    EXPECT_TRUE(model::validate(r.assignment).feasible()) << "seed " << seed;
    EXPECT_LE(r.groups_used, groups.size() / 3 + 1);
    EXPECT_NEAR(r.utility, r.assignment.utility(), 1e-9);
  }
}

TEST(GroupSelect, UtilityNoWorseThanNaiveDedup) {
  // The fixed-point augmentation must at least match "solve + drop".
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 20;
    cfg.num_users = 8;
    cfg.budget_fraction = 0.35;
    cfg.seed = seed;
    const Instance inst = gen::random_cap_instance(cfg);
    std::vector<GroupId> groups(inst.num_streams());
    for (std::size_t s = 0; s < groups.size(); ++s)
      groups[s] = static_cast<GroupId>(s / 2);

    const GroupSelectResult full = solve_with_groups(inst, groups);

    // Naive: unconstrained solve, keep best variant per group, stop.
    MmdSolveResult base = solve_mmd(inst);
    model::Assignment naive = std::move(base.assignment);
    std::vector<double> value(inst.num_streams(), 0.0);
    for (std::size_t uu = 0; uu < inst.num_users(); ++uu)
      for (model::StreamId s :
           naive.streams_of(static_cast<model::UserId>(uu)))
        value[static_cast<std::size_t>(s)] +=
            inst.utility(static_cast<model::UserId>(uu), s);
    for (model::StreamId s : naive.range()) {
      const GroupId g = groups[static_cast<std::size_t>(s)];
      // Keep s only if it is the max-value carried stream of its group.
      for (model::StreamId t : naive.range()) {
        if (t != s && groups[static_cast<std::size_t>(t)] == g &&
            value[static_cast<std::size_t>(t)] >
                value[static_cast<std::size_t>(s)]) {
          for (std::size_t uu = 0; uu < inst.num_users(); ++uu)
            naive.unassign(static_cast<model::UserId>(uu), s);
          break;
        }
      }
    }
    EXPECT_GE(full.utility + 1e-9, naive.utility()) << "seed " << seed;
  }
}

TEST(GroupSelect, SatisfiesGroupConstraintHelper) {
  const Instance inst = model::build_cap_instance(
      {1.0, 1.0}, 10.0, {100.0}, {{0, 0, 1.0}, {0, 1, 1.0}});
  model::Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);
  const GroupId same[] = {3, 3};
  const GroupId diff[] = {3, 4};
  const GroupId none[] = {kNoGroup, kNoGroup};
  EXPECT_FALSE(satisfies_group_constraint(a, same));
  EXPECT_TRUE(satisfies_group_constraint(a, diff));
  EXPECT_TRUE(satisfies_group_constraint(a, none));
}

}  // namespace
}  // namespace vdist::core
