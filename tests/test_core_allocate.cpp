#include "core/allocate_online.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/mmd_solver.h"
#include "gen/small_streams.h"
#include "model/factory.h"
#include "model/validate.h"
#include "util/rng.h"

namespace vdist::core {
namespace {

using model::Instance;

TEST(Allocator, RejectsBadMu) {
  EXPECT_THROW(ExponentialCostAllocator({1.0}, {0.5, true}),
               std::invalid_argument);
  EXPECT_THROW(ExponentialCostAllocator({1.0}, {1.0, true}),
               std::invalid_argument);
}

TEST(Allocator, FirstCheapStreamIsAccepted) {
  // Zero load: exponential costs are all 0, so any positive-utility
  // stream beats the LHS.
  ExponentialCostAllocator alloc({10.0}, {16.0, true});
  const auto u = alloc.add_user({5.0});
  const std::vector<double> costs{1.0};
  const auto decision =
      alloc.offer(costs, {{u, 2.0, {1.0}}});
  EXPECT_TRUE(decision.accepted);
  ASSERT_EQ(decision.taken.size(), 1u);
  EXPECT_NEAR(alloc.server_load(0), 0.1, 1e-12);
  EXPECT_NEAR(alloc.user_load(u, 0), 0.2, 1e-12);
}

TEST(Allocator, HighLoadMakesExponentialCostProhibitive) {
  ExponentialCostAllocator alloc({10.0}, {1e6, /*guard=*/false});
  const auto u = alloc.add_user({1e9});
  // Drive the server load high with a big cheap-to-accept stream.
  const std::vector<double> big{9.0};
  auto d1 = alloc.offer(big, {{u, 1e9, {0.0}}});
  ASSERT_TRUE(d1.accepted);
  // Now C(server) = 10*(mu^0.9 - 1) is astronomically larger than any
  // modest utility: a small stream must be rejected.
  const std::vector<double> small{0.5};
  auto d2 = alloc.offer(small, {{u, 1.0, {0.0}}});
  EXPECT_FALSE(d2.accepted);
}

TEST(Allocator, PeelsWorstRatioUsersFirst) {
  // Two users, one heavily loaded. The loaded user's term is huge, so the
  // peel should drop exactly them and keep the fresh user.
  ExponentialCostAllocator alloc({100.0}, {1e4, false});
  const auto hot = alloc.add_user({1.0});
  const auto cold = alloc.add_user({1.0});
  // Saturate `hot` to 90% via a dedicated stream.
  const std::vector<double> warm_costs{0.0};
  auto warmup = alloc.offer(warm_costs, {{hot, 1e9, {0.9}}});
  ASSERT_TRUE(warmup.accepted);
  // Now offer a stream both want with modest utility.
  const std::vector<double> main_costs{1.0};
  auto d = alloc.offer(main_costs, {{hot, 1.0, {0.1}}, {cold, 1.0, {0.1}}});
  ASSERT_TRUE(d.accepted);
  ASSERT_EQ(d.taken.size(), 1u);
  EXPECT_EQ(d.taken[0], 1u) << "the cold user's candidate index";
  EXPECT_EQ(d.peeled, 1u);
}

TEST(Allocator, ReleaseRestoresLoads) {
  ExponentialCostAllocator alloc({10.0}, {16.0, true});
  const auto u = alloc.add_user({5.0});
  const std::vector<double> costs{2.0};
  const std::vector<ExponentialCostAllocator::Candidate> cands{
      {u, 3.0, {1.5}}};
  const auto d = alloc.offer(costs, cands);
  ASSERT_TRUE(d.accepted);
  alloc.release(costs, cands, d.taken);
  EXPECT_NEAR(alloc.server_load(0), 0.0, 1e-12);
  EXPECT_NEAR(alloc.user_load(u, 0), 0.0, 1e-12);
}

TEST(Allocator, ZeroedCapUserIsSkippedEvenWithoutTheGuard) {
  // Serving sessions zero a departed user's cap via set_user_capacity.
  // With the guard off, the dead candidate must be skipped outright —
  // not priced at infinity, which would poison the peel sums with
  // inf - inf = NaN and reject the healthy candidates too.
  ExponentialCostAllocator alloc({10.0}, {16.0, /*guard=*/false});
  const auto alive = alloc.add_user({5.0});
  const auto departed = alloc.add_user({5.0});
  alloc.set_user_capacity(departed, 0, 0.0);
  const std::vector<double> costs{1.0};
  const auto decision =
      alloc.offer(costs, {{alive, 2.0, {1.0}}, {departed, 2.0, {1.0}}});
  EXPECT_TRUE(decision.accepted);
  ASSERT_EQ(decision.taken.size(), 1u);
  EXPECT_EQ(decision.taken[0], 0u);  // the alive candidate
  EXPECT_NEAR(alloc.user_load(alive, 0), 0.2, 1e-12);
  EXPECT_THROW(alloc.set_user_capacity(99, 0, 1.0), std::invalid_argument);
}

TEST(Allocator, GuardBlocksRealViolations) {
  // mu far too small for the load regime: the raw algorithm would
  // overshoot; the guard must prevent it.
  ExponentialCostAllocator alloc({1.0}, {2.0, true});
  const auto u = alloc.add_user({model::kUnbounded});
  const std::vector<double> costs{0.4};
  for (int i = 0; i < 10; ++i) (void)alloc.offer(costs, {{u, 100.0, {0.0}}});
  EXPECT_NEAR(alloc.server_load(0), 0.8, 1e-9)
      << "two acceptances, the rest guarded off";
  EXPECT_GT(alloc.guard_trips(), 0u);
}

TEST(AllocateOnline, Lemma51NoViolationsOnSmallStreams) {
  // The paper's feasibility lemma: with mu from the global skew and the
  // small-streams premise, no budget is ever violated EVEN WITHOUT the
  // guard.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::SmallStreamsConfig cfg;
    cfg.num_streams = 150;
    cfg.num_users = 10;
    cfg.seed = seed;
    const auto gen_result = gen::small_streams_instance(cfg);
    ASSERT_TRUE(
        model::satisfies_small_streams(gen_result.instance, gen_result.skew));

    AllocateOptions opts;
    opts.guard_feasibility = false;  // pure Algorithm 2
    const AllocateResult r = allocate_online(gen_result.instance, opts);
    EXPECT_TRUE(model::validate(r.assignment).feasible())
        << "Lemma 5.1 violated at seed " << seed;
    EXPECT_EQ(r.guard_trips, 0u);
  }
}

TEST(AllocateOnline, CompetitiveAgainstOfflineSolver) {
  // Theorem 5.4 implies ALG >= OPT/(1+2 log2 mu) >= offline/(1+2 log2 mu).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::SmallStreamsConfig cfg;
    cfg.num_streams = 120;
    cfg.num_users = 8;
    cfg.tightness = 1.5;
    cfg.seed = seed * 3 + 1;
    const auto gen_result = gen::small_streams_instance(cfg);

    AllocateOptions opts;
    opts.guard_feasibility = false;
    const AllocateResult online = allocate_online(gen_result.instance, opts);
    const MmdSolveResult offline = solve_mmd(gen_result.instance);
    const double factor = 1.0 + 2.0 * std::log2(online.mu);
    EXPECT_GE(online.utility * factor + 1e-6, offline.utility)
        << "seed " << cfg.seed << " mu " << online.mu;
  }
}

TEST(AllocateOnline, OrderInsensitiveFeasibility) {
  gen::SmallStreamsConfig cfg;
  cfg.num_streams = 100;
  cfg.num_users = 6;
  cfg.seed = 99;
  const auto gen_result = gen::small_streams_instance(cfg);
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    AllocateOptions opts;
    opts.guard_feasibility = false;
    opts.order.resize(gen_result.instance.num_streams());
    std::iota(opts.order.begin(), opts.order.end(), 0);
    rng.shuffle(opts.order);
    const AllocateResult r = allocate_online(gen_result.instance, opts);
    EXPECT_TRUE(model::validate(r.assignment).feasible());
  }
}

TEST(AllocateOnline, GuardKeepsGeneralInstancesFeasible) {
  // Outside the small-streams regime the guard must still deliver
  // feasibility.
  const Instance inst = model::build_cap_instance(
      {5.0, 5.0, 5.0}, 8.0, {100.0},
      {{0, 0, 5.0}, {0, 1, 5.0}, {0, 2, 5.0}});
  AllocateOptions opts;
  opts.guard_feasibility = true;
  const AllocateResult r = allocate_online(inst, opts);
  EXPECT_TRUE(model::validate(r.assignment).feasible());
}

TEST(AllocateOnline, MuDefaultsToGlobalSkew) {
  const Instance inst = model::build_cap_instance(
      {1.0}, 10.0, {5.0}, {{0, 0, 4.0}});
  const AllocateResult r = allocate_online(inst);
  EXPECT_DOUBLE_EQ(r.mu, model::global_skew(inst).mu);
  EXPECT_DOUBLE_EQ(r.gamma, 1.0);
}

TEST(AllocateOnline, DecisionsAreDeterministic) {
  gen::SmallStreamsConfig cfg;
  cfg.num_streams = 80;
  cfg.num_users = 6;
  cfg.seed = 7;
  const auto gen_result = gen::small_streams_instance(cfg);
  const AllocateResult a = allocate_online(gen_result.instance);
  const AllocateResult b = allocate_online(gen_result.instance);
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
}


TEST(AllocatorScales, HandComputedNormalization) {
  // One stream of cost 2, two users with utilities 3 and 5 (cap form).
  // D = m + |U|*mc = 1 + 2 = 3. Server scale = min single utility /
  // (D * cost) = 3 / (3*2) = 0.5. User virtual-budget scales: w/k = 1 for
  // the cap form, so scale = 1/(D*1) = 1/3.
  const Instance inst = model::build_cap_instance(
      {2.0}, 10.0, {10.0, 10.0}, {{0, 0, 3.0}, {1, 0, 5.0}});
  const AllocatorScales scales = compute_scales(inst);
  ASSERT_EQ(scales.server.size(), 1u);
  EXPECT_NEAR(scales.server[0], 0.5, 1e-12);
  ASSERT_EQ(scales.user.size(), 2u);
  EXPECT_NEAR(scales.user[0][0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(scales.user[1][0], 1.0 / 3.0, 1e-12);
}

TEST(AllocatorScales, ZeroCostMeasuresKeepDefaultScale) {
  model::InstanceBuilder b(2, 1);
  b.set_budget(0, 5.0);
  b.set_budget(1, 5.0);
  const auto s = b.add_stream({1.0, 0.0});  // measure 1 free
  const auto u = b.add_user({10.0});
  b.add_interest(u, s, 2.0, {2.0});
  const Instance inst = std::move(b).build();
  const AllocatorScales scales = compute_scales(inst);
  // Measure 0: 2 / (D * 1) with D = 1*... m=2, |U|*mc = 1 => D = 3.
  EXPECT_NEAR(scales.server[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(scales.server[1], 1.0, 1e-12) << "no costed stream: default";
}

TEST(AllocatorScales, NormalizationSatisfiesEquationOne) {
  // After scaling, for every budget function i and stream S:
  //   1 <= (1/D) * (min_u w) / c'_i(S)   and   (1/D) * (sum_u w) / c'_i(S)
  // stays below the instance's gamma.
  gen::SmallStreamsConfig cfg;
  cfg.num_streams = 60;
  cfg.num_users = 8;
  cfg.seed = 5;
  const auto built = gen::small_streams_instance(cfg);
  const Instance& inst = built.instance;
  const AllocatorScales scales = compute_scales(inst);
  const double D = inst.num_server_measures() +
                   static_cast<double>(inst.num_users()) *
                       inst.num_user_measures();
  const double gamma = model::global_skew(inst).gamma;
  for (int i = 0; i < inst.num_server_measures(); ++i) {
    for (std::size_t ss = 0; ss < inst.num_streams(); ++ss) {
      const auto s = static_cast<model::StreamId>(ss);
      const double c =
          inst.cost(s, i) * scales.server[static_cast<std::size_t>(i)];
      if (c <= 0.0) continue;
      const auto ws = inst.utilities_of(s);
      if (ws.empty()) continue;
      double min_w = 1e300, sum_w = 0.0;
      for (double w : ws) {
        min_w = std::min(min_w, w);
        sum_w += w;
      }
      EXPECT_GE(min_w / (D * c), 1.0 - 1e-9);
      EXPECT_LE(sum_w / (D * c), gamma * (1 + 1e-9));
    }
  }
}

}  // namespace
}  // namespace vdist::core
