// InstanceView (model/view.h): the copy-free cap-form lens. Whole-
// instance views must solve bit-identically to the Instance overloads,
// surrogate (band-style) views must solve identically to materialized
// sub-instances built through InstanceBuilder, and the validation
// contract must reject mismatched spans and non-SMD parents.
#include "model/view.h"

#include <gtest/gtest.h>

#include "assignment_pairs.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/greedy.h"
#include "core/partial_enum.h"
#include "engine/scenario.h"
#include "model/factory.h"
#include "model/instance.h"
#include "util/rng.h"

namespace vdist::model {
namespace {

using core::GreedyResult;
using core::SmdSolveResult;
using engine::ScenarioSpec;

using vdist::testing::pairs;

Instance cap_scenario(std::uint64_t seed, int streams = 60, int users = 20) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", streams).set("users", users);
  spec.seed = seed;
  return engine::build_scenario(spec);
}

// A random surrogate over a parent: a subset of edges keeps a perturbed
// utility, the rest get zero (out of band); caps are rescaled. Mirrors
// exactly what core/skew_bands.cpp feeds the solver family.
struct Surrogate {
  std::vector<double> edge_utility;
  std::vector<double> totals;
  std::vector<double> caps;
};

Surrogate make_surrogate(const Instance& inst, std::uint64_t seed) {
  Surrogate out;
  util::Rng rng(seed);
  out.caps.resize(inst.num_users());
  for (std::size_t u = 0; u < out.caps.size(); ++u)
    out.caps[u] = inst.capacity(static_cast<UserId>(u), 0) *
                  rng.uniform(0.8, 1.2);
  out.edge_utility.assign(inst.num_edges(), 0.0);
  out.totals.assign(inst.num_streams(), 0.0);
  for (std::size_t ss = 0; ss < inst.num_streams(); ++ss) {
    const auto s = static_cast<StreamId>(ss);
    for (EdgeId e = inst.first_edge(s); e < inst.last_edge(s); ++e) {
      if (!rng.bernoulli(0.6)) continue;  // out of band
      const auto u = static_cast<std::size_t>(inst.edge_user(e));
      // Real band surrogates satisfy w_u^i <= W_u^i (the parent builder
      // zeroed over-cap pairs); keep the invariant so the materialized
      // builder keeps the same edge set.
      const double w = std::min(inst.edge_utility(e) * rng.uniform(0.5, 1.5),
                                out.caps[u]);
      out.edge_utility[static_cast<std::size_t>(e)] = w;
      out.totals[ss] += w;
    }
  }
  return out;
}

// The PR-3 band materialization: same streams/costs/budget, caps from
// the surrogate, only in-band (> 0) edges, via the builder round-trip.
Instance materialize(const Instance& parent, const Surrogate& sur) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, parent.budget(0));
  for (std::size_t s = 0; s < parent.num_streams(); ++s)
    b.add_stream({parent.cost(static_cast<StreamId>(s), 0)});
  for (double cap : sur.caps) b.add_user({cap});
  for (std::size_t ss = 0; ss < parent.num_streams(); ++ss) {
    const auto s = static_cast<StreamId>(ss);
    for (EdgeId e = parent.first_edge(s); e < parent.last_edge(s); ++e) {
      const double w = sur.edge_utility[static_cast<std::size_t>(e)];
      if (w > 0.0) b.add_interest_unit_skew(parent.edge_user(e), s, w);
    }
  }
  return std::move(b).build();
}

// --- Whole-instance views ---------------------------------------------

TEST(InstanceView, CapFormSolvesBitIdenticalToInstanceOverloads) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = cap_scenario(seed);
    const InstanceView view = InstanceView::cap_form(inst);

    const GreedyResult by_view = core::greedy_unit_skew(view);
    const GreedyResult by_inst = core::greedy_unit_skew(inst);
    EXPECT_EQ(by_view.capped_utility, by_inst.capped_utility) << seed;
    EXPECT_EQ(by_view.trace.considered, by_inst.trace.considered) << seed;
    EXPECT_EQ(pairs(by_view.assignment), pairs(by_inst.assignment)) << seed;

    const SmdSolveResult fixed_view = core::solve_unit_skew(view);
    const SmdSolveResult fixed_inst = core::solve_unit_skew(inst);
    EXPECT_EQ(fixed_view.utility, fixed_inst.utility) << seed;
    EXPECT_EQ(fixed_view.variant, fixed_inst.variant) << seed;
    EXPECT_EQ(pairs(fixed_view.assignment), pairs(fixed_inst.assignment))
        << seed;
  }
}

TEST(InstanceView, CapFormAccessorsMirrorTheParent) {
  const Instance inst = cap_scenario(11);
  const InstanceView view = InstanceView::cap_form(inst);
  ASSERT_EQ(view.num_streams(), inst.num_streams());
  ASSERT_EQ(view.num_users(), inst.num_users());
  ASSERT_EQ(view.num_edges(), inst.num_edges());
  EXPECT_EQ(view.budget(), inst.budget(0));
  EXPECT_EQ(&view.base(), &inst);
  for (std::size_t s = 0; s < inst.num_streams(); ++s) {
    const auto sid = static_cast<StreamId>(s);
    EXPECT_EQ(view.cost(sid), inst.cost(sid, 0));
    EXPECT_EQ(view.total_utility(sid), inst.total_utility(sid));
    EXPECT_EQ(view.first_edge(sid), inst.first_edge(sid));
    EXPECT_EQ(view.last_edge(sid), inst.last_edge(sid));
  }
  for (std::size_t u = 0; u < inst.num_users(); ++u) {
    const auto uid = static_cast<UserId>(u);
    EXPECT_EQ(view.capacity(uid), inst.capacity(uid, 0));
    ASSERT_EQ(view.streams_of(uid).size(), inst.streams_of(uid).size());
    for (StreamId s : view.streams_of(uid))
      EXPECT_EQ(view.pair_utility(uid, s), inst.utility(uid, s));
  }
}

// --- Surrogate (band-style) views -------------------------------------

TEST(InstanceView, SurrogateViewSolvesMatchMaterializedSubInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance parent = cap_scenario(seed, 80, 25);
    const Surrogate sur = make_surrogate(parent, 100 + seed);
    const InstanceView view(parent, sur.edge_utility, sur.totals, sur.caps);
    const Instance mat = materialize(parent, sur);

    // The materialized instance shares stream/user ids with the parent,
    // so pair sets and traces are directly comparable; utilities and
    // every surrogate-side comparison are bit-identical by construction.
    const GreedyResult by_view = core::greedy_unit_skew(view);
    const GreedyResult by_mat = core::greedy_unit_skew(mat);
    EXPECT_EQ(by_view.capped_utility, by_mat.capped_utility) << seed;
    EXPECT_EQ(by_view.trace.considered, by_mat.trace.considered) << seed;
    EXPECT_EQ(pairs(by_view.assignment), pairs(by_mat.assignment)) << seed;

    const SmdSolveResult fixed_view = core::solve_unit_skew(view);
    const SmdSolveResult fixed_mat = core::solve_unit_skew(mat);
    EXPECT_EQ(fixed_view.utility, fixed_mat.utility) << seed;
    EXPECT_EQ(fixed_view.variant, fixed_mat.variant) << seed;
    EXPECT_EQ(pairs(fixed_view.assignment), pairs(fixed_mat.assignment))
        << seed;

    core::PartialEnumOptions opts;
    opts.seed_size = 1;
    const auto enum_view = core::partial_enum_unit_skew(view, opts);
    const auto enum_mat = core::partial_enum_unit_skew(mat, opts);
    EXPECT_EQ(enum_view.best.utility, enum_mat.best.utility) << seed;
    EXPECT_EQ(enum_view.candidates_evaluated, enum_mat.candidates_evaluated)
        << seed;
    EXPECT_EQ(pairs(enum_view.best.assignment),
              pairs(enum_mat.best.assignment))
        << seed;
  }
}

// A view-built assignment lives on the parent instance: its Assignment
// accounting reports parent-truth utilities while the solver's objective
// is the surrogate's.
TEST(InstanceView, ViewAssignmentsCarryParentAccounting) {
  const Instance parent = cap_scenario(5, 40, 12);
  const Surrogate sur = make_surrogate(parent, 77);
  const InstanceView view(parent, sur.edge_utility, sur.totals, sur.caps);
  const GreedyResult g = core::greedy_unit_skew(view);
  EXPECT_EQ(&g.assignment.instance(), &parent);
  double parent_w = 0.0;
  for (const auto& [u, s] : pairs(g.assignment))
    parent_w += parent.utility(u, s);
  EXPECT_DOUBLE_EQ(g.assignment.utility(), parent_w);
}

// --- Validation --------------------------------------------------------

TEST(InstanceView, RejectsMismatchedSpansAndWrongForms) {
  const Instance inst = cap_scenario(3, 20, 8);
  const Surrogate sur = make_surrogate(inst, 9);
  const std::vector<double> short_caps(inst.num_users() - 1, 1.0);
  EXPECT_THROW(InstanceView(inst, sur.edge_utility, sur.totals, short_caps),
               std::invalid_argument);
  const std::vector<double> short_edges(inst.num_edges() - 1, 0.0);
  EXPECT_THROW(InstanceView(inst, short_edges, sur.totals, sur.caps),
               std::invalid_argument);

  // cap_form requires the unit-skew cap form.
  const Instance skewed = build_smd_instance(
      {1.0}, 10.0, {5.0}, {{0, 0, /*utility=*/4.0, /*load=*/1.0}});
  EXPECT_THROW((void)InstanceView::cap_form(skewed), std::invalid_argument);

  // Any view requires an SMD parent.
  ScenarioSpec mmd;
  mmd.name = "mmd";
  mmd.seed = 1;
  const Instance multi = engine::build_scenario(mmd);
  ASSERT_FALSE(multi.is_smd());
  EXPECT_THROW((void)InstanceView::cap_form(multi), std::invalid_argument);
}

}  // namespace
}  // namespace vdist::model
