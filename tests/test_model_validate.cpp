#include "model/validate.h"

#include <gtest/gtest.h>

#include "model/factory.h"

namespace vdist::model {
namespace {

// Budget 3; stream costs 2 and 2; caps 3.
Instance tight_instance() {
  return build_cap_instance({2.0, 2.0}, 3.0, {3.0, 3.0},
                            {{0, 0, 2.0}, {0, 1, 2.0}, {1, 0, 1.0}});
}

TEST(Validate, EmptyAssignmentIsFeasible) {
  const Instance inst = tight_instance();
  const Assignment a(inst);
  const ValidationReport rep = validate(a);
  EXPECT_TRUE(rep.feasible());
  EXPECT_TRUE(rep.violations.empty());
}

TEST(Validate, FeasibleWithinAllBounds) {
  const Instance inst = tight_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(1, 0);
  const ValidationReport rep = validate(a);
  EXPECT_EQ(rep.feasibility, Feasibility::kFeasible);
}

TEST(Validate, SemiFeasibleWhenUserCapExceeded) {
  const Instance inst = tight_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);  // raw utility 4 > cap 3; server cost 4 > budget 3 too!
  const ValidationReport rep = validate(a);
  // Server is violated as well here, so: infeasible.
  EXPECT_EQ(rep.feasibility, Feasibility::kInfeasible);
}

TEST(Validate, SemiFeasibleClassification) {
  // Loosen the budget so only the user cap is violated.
  const Instance inst = build_cap_instance(
      {2.0, 2.0}, 10.0, {3.0, 3.0}, {{0, 0, 2.0}, {0, 1, 2.0}});
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);  // raw 4 > cap 3, server 4 <= 10
  const ValidationReport rep = validate(a);
  EXPECT_EQ(rep.feasibility, Feasibility::kSemiFeasible);
  EXPECT_TRUE(rep.server_feasible());
  EXPECT_FALSE(rep.feasible());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kUserCapacity);
  EXPECT_EQ(rep.violations[0].user, 0);
  EXPECT_FALSE(rep.violations[0].to_string().empty());
}

TEST(Validate, InfeasibleWhenServerBudgetExceeded) {
  const Instance inst = tight_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(1, 1);  // range {0,1}: cost 4 > 3 — but wait, (u1,s1) is not an
                   // edge; the server still pays for carrying s1.
  const ValidationReport rep = validate(a);
  EXPECT_EQ(rep.feasibility, Feasibility::kInfeasible);
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kServerBudget);
  EXPECT_FALSE(rep.server_feasible());
}

TEST(Validate, ExactBoundaryIsFeasible) {
  // Sum exactly equals the bound: tolerance must accept it.
  const Instance inst = build_cap_instance(
      {1.5, 1.5}, 3.0, {4.0}, {{0, 0, 2.0}, {0, 1, 2.0}});
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);
  const ValidationReport rep = validate(a);
  EXPECT_EQ(rep.feasibility, Feasibility::kFeasible);
}

TEST(Validate, UnboundedMeasuresNeverViolate) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, kUnbounded);
  const StreamId s0 = b.add_stream({1e9});
  const UserId u = b.add_user({kUnbounded});
  b.add_interest(u, s0, 1e9, {1e9});
  const Instance inst = std::move(b).build();
  Assignment a(inst);
  a.assign(u, s0);
  EXPECT_TRUE(validate(a).feasible());
}

TEST(Validate, MultiMeasureViolationsAreAllReported) {
  InstanceBuilder b(2, 2);
  b.set_budget(0, 2.0);
  b.set_budget(1, 2.0);
  const StreamId s0 = b.add_stream({1.5, 1.5});
  const StreamId s1 = b.add_stream({1.5, 1.5});
  const UserId u = b.add_user({2.0, 2.0});
  b.add_interest(u, s0, 1.0, {1.5, 1.5});
  b.add_interest(u, s1, 1.0, {1.5, 1.5});
  const Instance inst = std::move(b).build();
  Assignment a(inst);
  a.assign(u, s0);
  a.assign(u, s1);  // violates both server measures and both user measures
  const ValidationReport rep = validate(a);
  EXPECT_EQ(rep.feasibility, Feasibility::kInfeasible);
  EXPECT_EQ(rep.violations.size(), 4u);
}

}  // namespace
}  // namespace vdist::model
