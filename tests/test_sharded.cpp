// Property suite for the sharded serving engine (engine::ShardedSession
// behind engine::ServingBackend): placement stability, replay
// determinism, and — the backbone guarantee — bit-identical resolve
// objectives and pair sets against the single-shard Session at every
// event prefix, for several shard counts and seeds.
#include "engine/sharded_session.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/serving.h"
#include "engine/session.h"
#include "gen/events.h"
#include "gen/random_instances.h"
#include "model/validate.h"

namespace vdist::engine {
namespace {

model::Instance cap_instance(std::uint64_t seed, std::int64_t streams = 25,
                             std::int64_t users = 12) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = static_cast<std::size_t>(streams);
  cfg.num_users = static_cast<std::size_t>(users);
  cfg.seed = seed;
  return gen::random_cap_instance(cfg);
}

std::vector<model::InstanceEvent> churn(const model::Instance& inst,
                                        std::uint64_t seed,
                                        std::size_t events = 40) {
  gen::EventTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = seed;
  return gen::make_event_trace(inst, cfg);
}

ServeConfig resolve_config(int shards) {
  ServeConfig cfg;
  cfg.policy = ServePolicy::kResolve;
  cfg.shards = shards;
  return cfg;
}

// The full pair set of the maintained assignment, as comparable data.
std::set<std::pair<model::UserId, model::StreamId>> pair_set(
    ServingBackend& backend) {
  std::set<std::pair<model::UserId, model::StreamId>> pairs;
  const model::Assignment& a = backend.assignment();
  const std::size_t users = backend.instance().num_users();
  for (std::size_t u = 0; u < users; ++u)
    for (const model::StreamId s :
         a.streams_of(static_cast<model::UserId>(u)))
      pairs.emplace(static_cast<model::UserId>(u), s);
  return pairs;
}

// --- Placement ---------------------------------------------------------

TEST(Sharded, ShardOfIsAStablePureFunction) {
  for (const int shards : {2, 3, 8}) {
    for (model::UserId u = 0; u < 200; ++u) {
      const int owner = ShardedSession::shard_of_user(u, shards);
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, shards);
      // Pure function of (id, shards): placement cannot move under any
      // sequence of joins/leaves, so re-asking must agree forever.
      EXPECT_EQ(owner, ShardedSession::shard_of_user(u, shards));
    }
    // Every shard owns someone (the hash does not collapse).
    std::set<int> user_owners, stream_owners;
    for (std::int32_t id = 0; id < 200; ++id) {
      user_owners.insert(ShardedSession::shard_of_user(id, shards));
      stream_owners.insert(ShardedSession::shard_of_stream(id, shards));
    }
    EXPECT_EQ(user_owners.size(), static_cast<std::size_t>(shards));
    EXPECT_EQ(stream_owners.size(), static_cast<std::size_t>(shards));
  }
  // Users and streams hash with different salts: id collisions between
  // the two universes must not force co-location systematically.
  int diverged = 0;
  for (std::int32_t id = 0; id < 64; ++id)
    if (ShardedSession::shard_of_user(id, 4) !=
        ShardedSession::shard_of_stream(id, 4))
      ++diverged;
  EXPECT_GT(diverged, 0);
}

TEST(Sharded, PlacementIsStableUnderJoinsAndLeaves) {
  const model::Instance inst = cap_instance(11);
  ServeConfig cfg = resolve_config(3);
  ShardedSession session(inst, cfg);
  std::vector<int> before;
  for (std::size_t u = 0; u < inst.num_users(); ++u)
    before.push_back(
        ShardedSession::shard_of_user(static_cast<model::UserId>(u), 3));
  for (const model::InstanceEvent& event : churn(inst, 5, 30))
    session.apply(event);
  for (std::size_t u = 0; u < inst.num_users(); ++u)
    EXPECT_EQ(before[u], ShardedSession::shard_of_user(
                             static_cast<model::UserId>(u), 3));
}

// --- The parity backbone -----------------------------------------------

TEST(Sharded, ResolveBitIdenticalToSingleSessionAtEveryPrefix) {
  for (const std::uint64_t seed : {3ull, 17ull, 29ull}) {
    const model::Instance inst = cap_instance(seed);
    const std::vector<model::InstanceEvent> trace = churn(inst, seed + 1);
    for (const int shards : {2, 5}) {
      const auto single = make_backend(inst, resolve_config(1));
      const auto sharded = make_backend(inst, resolve_config(shards));
      ASSERT_EQ(sharded->num_shards(), shards);
      EXPECT_EQ(single->objective(), sharded->objective());
      for (std::size_t i = 0; i < trace.size(); ++i) {
        single->apply(trace[i]);
        sharded->apply(trace[i]);
        // Bit-identical objective at EVERY prefix — the correctness gate
        // that makes --shards a pure config flip.
        ASSERT_EQ(single->objective(), sharded->objective())
            << "seed " << seed << " shards " << shards << " event " << i;
        ASSERT_EQ(pair_set(*single), pair_set(*sharded))
            << "seed " << seed << " shards " << shards << " event " << i;
      }
      EXPECT_EQ(single->counters().events, trace.size());
      EXPECT_EQ(sharded->counters().events, trace.size());
      EXPECT_STREQ(single->variant(), sharded->variant());
    }
  }
}

TEST(Sharded, CrossShardReplayIsDeterministic) {
  const model::Instance inst = cap_instance(23);
  const std::vector<model::InstanceEvent> trace = churn(inst, 7, 60);
  ShardedSession a(inst, resolve_config(3));
  ShardedSession b(inst, resolve_config(3));
  for (const model::InstanceEvent& event : trace) {
    a.apply(event);
    b.apply(event);
    ASSERT_EQ(a.objective(), b.objective());
  }
  // Identical routing too: same events, same owner sets, same order.
  EXPECT_EQ(a.routing().routed_copies, b.routing().routed_copies);
  EXPECT_EQ(a.routing().cross_shard_events, b.routing().cross_shard_events);
  EXPECT_EQ(a.routing().broadcasts, b.routing().broadcasts);
  // A 60-event churn over a 25x12 world must exercise the cross-shard
  // path (leaves/removes touch the peer owners), or the routing rules
  // are not being tested at all.
  EXPECT_GT(a.routing().cross_shard_events, 0u);
  EXPECT_GE(a.routing().routed_copies, trace.size());
}

TEST(Sharded, CheckParityHoldsAfterEveryEvent) {
  const model::Instance inst = cap_instance(31);
  const auto backend = make_backend(inst, resolve_config(4));
  for (const model::InstanceEvent& event : churn(inst, 13, 25)) {
    backend->apply(event);
    const ParityReport parity = backend->check_parity();
    EXPECT_TRUE(parity.ok) << parity.detail;
    EXPECT_EQ(parity.current, parity.fresh);
  }
  // The snapshot the parity gate solves is a feasible world.
  const model::Instance snap = backend->snapshot();
  EXPECT_EQ(snap.num_users(), inst.num_users());
  EXPECT_EQ(snap.num_streams(), inst.num_streams());
}

TEST(Sharded, RepairStaysWithinTheQualityBound) {
  const model::Instance inst = cap_instance(41);
  ServeConfig cfg;
  cfg.policy = ServePolicy::kRepair;
  cfg.shards = 3;
  cfg.refresh = 1;  // self-correct at every event
  cfg.bound = 0.05;
  const auto backend = make_backend(inst, cfg);
  for (const model::InstanceEvent& event : churn(inst, 19, 30)) {
    backend->apply(event);
    const ParityReport parity = backend->check_parity();
    EXPECT_TRUE(parity.ok) << parity.detail;
  }
  EXPECT_GT(backend->counters().drift_checks, 0u);
  // The repair engine's maintained assignment is feasible on the
  // maintained world.
  const model::Instance snap = backend->snapshot();
  model::Assignment on_snapshot(snap);
  const model::Assignment& live = backend->assignment();
  for (std::size_t u = 0; u < snap.num_users(); ++u)
    for (const model::StreamId s :
         live.streams_of(static_cast<model::UserId>(u)))
      on_snapshot.assign(static_cast<model::UserId>(u), s);
  EXPECT_TRUE(model::validate(on_snapshot).feasible());
}

// --- Appends ----------------------------------------------------------

TEST(Sharded, AppendsRebaseEveryShardAndKeepParity) {
  const model::Instance inst = cap_instance(53, 15, 8);
  const auto single = make_backend(inst, resolve_config(1));
  const auto sharded = make_backend(inst, resolve_config(3));

  // Append a brand-new user interested in two existing streams.
  model::InstanceEvent user_append;
  user_append.type = model::EventType::kUserJoin;
  user_append.user = static_cast<model::UserId>(inst.num_users());
  user_append.value = 12.0;
  user_append.interests = {{.stream = 0, .utility = 3.0},
                           {.stream = 4, .utility = 2.5}};
  // Append a brand-new stream with two interested users (including the
  // freshly appended one).
  model::InstanceEvent stream_append;
  stream_append.type = model::EventType::kStreamAdd;
  stream_append.stream = static_cast<model::StreamId>(inst.num_streams());
  stream_append.value = 4.0;
  stream_append.interests = {{.user = 1, .utility = 2.0},
                             {.user = user_append.user, .utility = 1.5}};

  for (const model::InstanceEvent& event : {user_append, stream_append}) {
    single->apply(event);
    sharded->apply(event);
    ASSERT_EQ(single->objective(), sharded->objective());
    ASSERT_EQ(pair_set(*single), pair_set(*sharded));
  }
  EXPECT_EQ(sharded->instance().num_users(), inst.num_users() + 1);
  EXPECT_EQ(sharded->instance().num_streams(), inst.num_streams() + 1);
  const auto& routing =
      dynamic_cast<ShardedSession&>(*sharded).routing();
  EXPECT_EQ(routing.broadcasts, 2u);
  // Churn on top of the appended world stays in lockstep too.
  const model::Instance grown = sharded->snapshot();
  for (const model::InstanceEvent& event : churn(grown, 61, 20)) {
    single->apply(event);
    sharded->apply(event);
    ASSERT_EQ(single->objective(), sharded->objective());
  }
  EXPECT_TRUE(sharded->check_parity().ok);
}

// --- Validation --------------------------------------------------------

TEST(Sharded, InvalidEventsThrowBeforeAnyShardMutates) {
  const model::Instance inst = cap_instance(71);
  const auto backend = make_backend(inst, resolve_config(3));
  const double objective = backend->objective();

  model::InstanceEvent bad;
  bad.type = model::EventType::kUserLeave;
  bad.user = 999;
  try {
    backend->apply(bad);
    FAIL() << "unknown user must throw";
  } catch (const std::invalid_argument& e) {
    // The canonical overlay message, mirrored coordinator-side.
    EXPECT_NE(std::string(e.what()).find("user_leave: unknown user 999"),
              std::string::npos)
        << e.what();
  }
  bad.type = model::EventType::kStreamRemove;
  bad.stream = -1;
  EXPECT_THROW(backend->apply(bad), std::invalid_argument);
  model::InstanceEvent bad_cap;
  bad_cap.type = model::EventType::kCapacityChange;
  bad_cap.user = 0;
  bad_cap.value = -2.0;
  EXPECT_THROW(backend->apply(bad_cap), std::invalid_argument);

  // Rejected before routing: no event counted, nothing moved, and the
  // engine still serves.
  EXPECT_EQ(backend->counters().events, 0u);
  EXPECT_EQ(backend->objective(), objective);
  model::InstanceEvent ok;
  ok.type = model::EventType::kUserLeave;
  ok.user = 0;
  backend->apply(ok);
  EXPECT_TRUE(backend->check_parity().ok);
}

TEST(Sharded, ConstructorRejectsTheWrongShapes) {
  const model::Instance inst = cap_instance(73);
  ServeConfig cfg = resolve_config(2);
  cfg.policy = ServePolicy::kOnline;
  EXPECT_THROW(ShardedSession(inst, cfg), std::invalid_argument);
  cfg.policy = ServePolicy::kResolve;
  cfg.shards = 1;
  EXPECT_THROW(ShardedSession(inst, cfg), std::invalid_argument);
  cfg.shards = 2;
  cfg.queue = 0;
  EXPECT_THROW(ShardedSession(inst, cfg), std::invalid_argument);
}

// --- ServeConfig -------------------------------------------------------

TEST(Sharded, ServeConfigValidatesEveryDeclaredOption) {
  EXPECT_EQ(ServeConfig::declared().size(), 12u);
  // Defaults round-trip through from_options.
  const ServeConfig defaults = ServeConfig::from_options({});
  EXPECT_EQ(defaults.policy, ServePolicy::kRepair);
  EXPECT_EQ(defaults.shards, 1);
  EXPECT_EQ(defaults.queue, 256u);
  EXPECT_EQ(defaults.family, "churn");

  const auto from = [](const std::string& key, const std::string& value) {
    SolveOptions opts;
    opts.set(key, value);
    return ServeConfig::from_options(opts);
  };
  EXPECT_EQ(from("shards", "8").shards, 8);
  EXPECT_THROW(from("shards", "0"), std::invalid_argument);
  EXPECT_THROW(from("shards", "65"), std::invalid_argument);
  EXPECT_THROW(from("queue", "0"), std::invalid_argument);
  EXPECT_THROW(from("bound", "-0.1"), std::invalid_argument);
  EXPECT_THROW(from("policy", "rapair"), std::invalid_argument);

  // The §5 allocator is one sequential decision process: sharding it is
  // a config contradiction, named as such.
  SolveOptions online;
  online.set("policy", "online").set("shards", "2");
  try {
    (void)ServeConfig::from_options(online);
    FAIL() << "online + shards must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--policy online"),
              std::string::npos);
  }

  // make_backend is the config flip.
  const model::Instance inst = cap_instance(79);
  EXPECT_EQ(make_backend(inst, resolve_config(1))->num_shards(), 1);
  EXPECT_EQ(make_backend(inst, resolve_config(3))->num_shards(), 3);
  EXPECT_NE(dynamic_cast<Session*>(make_backend(inst, resolve_config(1)).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<ShardedSession*>(
                make_backend(inst, resolve_config(3)).get()),
            nullptr);
}

// --- Declared event-trace params ---------------------------------------

TEST(Sharded, EventTraceParamsRoundTrip) {
  EXPECT_EQ(gen::event_trace_params().size(), 12u);
  gen::EventTraceConfig cfg;
  // The canonical line reproduces the defaults.
  const std::string defaults = gen::event_trace_param_line(cfg);
  for (const gen::EventParamSpec& spec : gen::event_trace_params())
    EXPECT_NE(defaults.find(std::string(spec.key) + "="), std::string::npos)
        << spec.key;

  gen::apply_event_trace_overrides(
      cfg, "events=42,seed=5,w-user-leave=3,cap-scale-min=0.5");
  EXPECT_EQ(cfg.num_events, 42u);
  EXPECT_EQ(cfg.seed, 5u);
  EXPECT_EQ(cfg.w_user_leave, 3.0);
  EXPECT_EQ(cfg.cap_scale_min, 0.5);
  const std::string line = gen::event_trace_param_line(cfg);
  EXPECT_NE(line.find("events=42"), std::string::npos);
  EXPECT_NE(line.find("w-user-leave=3"), std::string::npos);
  // Feeding the line back reproduces the config (the reproduction
  // handle a BENCH report or plan cell carries).
  gen::EventTraceConfig replay;
  gen::apply_event_trace_overrides(replay, line);
  EXPECT_EQ(gen::event_trace_param_line(replay), line);

  EXPECT_THROW(gen::apply_event_trace_overrides(cfg, "bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(gen::apply_event_trace_overrides(cfg, "events=-3"),
               std::invalid_argument);
  EXPECT_THROW(gen::apply_event_trace_overrides(cfg, "w-utility=abc"),
               std::invalid_argument);
  EXPECT_THROW(gen::apply_event_trace_overrides(cfg, "events"),
               std::invalid_argument);
  // A failed override leaves the config unchanged enough to keep its
  // line stable (strong guarantee not required; the line must parse).
  gen::EventTraceConfig after;
  gen::apply_event_trace_overrides(after, gen::event_trace_param_line(cfg));
  SUCCEED();
}

}  // namespace
}  // namespace vdist::engine
