# CLI-level round-trip tests, run by ctest as a cmake -P script:
#
#   cmake -DVDIST_CLI=<path> -DWORK_DIR=<dir> -P cli_tests.cmake
#
# Covers what the gtest suite cannot: the installed binary's argument
# handling — gen/stats/solve round-trips through the scenario registry
# for every family (notably `trace`, the one generator the CLI used to
# miss), strict rejection of typo'd flags, a flags-built sweep with CSV
# output, and the non-zero exit for unknown subcommands.

if(NOT DEFINED VDIST_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DVDIST_CLI=... -DWORK_DIR=... -P cli_tests.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_code)
  execute_process(
    COMMAND ${VDIST_CLI} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR
      "vdist_cli ${ARGN}: expected exit ${expect_code}, got ${code}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  set(cli_out "${out}" PARENT_SCOPE)
  set(cli_err "${err}" PARENT_SCOPE)
endfunction()

# --- every scenario family: gen -> stats -> solve round-trip ----------------
set(kinds cap smd mmd iptv small tightness trace)
set(small_args --streams 12 --users 6)
foreach(kind IN LISTS kinds)
  set(instance "${WORK_DIR}/${kind}.vd")
  if(kind STREQUAL "tightness")
    run_cli(0 gen --kind ${kind} --m 3 --mc 2 --out ${instance})
  elseif(kind STREQUAL "iptv")
    run_cli(0 gen --kind ${kind} ${small_args} --interests-per-user 4 --out ${instance})
  elseif(kind STREQUAL "trace")
    run_cli(0 gen --kind ${kind} ${small_args} --horizon 40 --out ${instance})
  else()
    run_cli(0 gen --kind ${kind} ${small_args} --out ${instance})
  endif()
  run_cli(0 stats ${instance})
  if(NOT cli_out MATCHES "streams:")
    message(FATAL_ERROR "stats ${kind}: unexpected output:\n${cli_out}")
  endif()
  run_cli(0 solve ${instance} --algo pipeline)
endforeach()

# trace instances are unit-skew, so the Section-2 algorithms apply too,
# and regeneration with the same seed is bit-identical (the registry's
# determinism contract observed end-to-end).
run_cli(0 solve "${WORK_DIR}/trace.vd" --algo greedy)
run_cli(0 gen --kind trace ${small_args} --horizon 40 --out "${WORK_DIR}/trace2.vd")
file(READ "${WORK_DIR}/trace.vd" trace_a)
file(READ "${WORK_DIR}/trace2.vd" trace_b)
if(NOT trace_a STREQUAL trace_b)
  message(FATAL_ERROR "trace gen is not deterministic across invocations")
endif()

# --- scenarios/algos listings ------------------------------------------------
run_cli(0 scenarios)
foreach(kind IN LISTS kinds)
  if(NOT cli_out MATCHES "${kind}")
    message(FATAL_ERROR "'vdist_cli scenarios' does not list ${kind}:\n${cli_out}")
  endif()
endforeach()
run_cli(0 algos)
if(NOT cli_out MATCHES "pipeline")
  message(FATAL_ERROR "'vdist_cli algos' does not list pipeline")
endif()

# --- strict typo rejection ---------------------------------------------------
run_cli(1 gen --kind cap --bugdet-fraction 0.3)
if(NOT cli_err MATCHES "bugdet-fraction")
  message(FATAL_ERROR "typo'd gen param not named in error:\n${cli_err}")
endif()
run_cli(1 solve "${WORK_DIR}/cap.vd" --algo enum --depht 2)
if(NOT cli_err MATCHES "declared")
  message(FATAL_ERROR "typo'd solve option not rejected strictly:\n${cli_err}")
endif()
run_cli(0 solve "${WORK_DIR}/cap.vd" --algo enum --depht 2 --strict 0)

# --- sweep from flags with CSV/JSON emitters ---------------------------------
run_cli(0 sweep --scenario cap --set users=5 --axis streams=8,12
        --algos greedy,exact --replicates 2 --seed 7
        --csv "${WORK_DIR}/sweep.csv" --json "${WORK_DIR}/sweep.json")
file(READ "${WORK_DIR}/sweep.csv" sweep_csv)
if(NOT sweep_csv MATCHES "scenario,seed,streams,algorithm")
  message(FATAL_ERROR "sweep CSV missing header:\n${sweep_csv}")
endif()
file(READ "${WORK_DIR}/sweep.json" sweep_json)
if(NOT sweep_json MATCHES "\"num_scenario_cells\":2")
  message(FATAL_ERROR "sweep JSON missing cells:\n${sweep_json}")
endif()

# sweep consumes every flag itself: typos and plan/flag conflicts are
# errors, not silently different experiments.
run_cli(1 sweep --scenario cap --algos greedy --replicate 3)
if(NOT cli_err MATCHES "--replicate")
  message(FATAL_ERROR "typo'd sweep flag not rejected:\n${cli_err}")
endif()
file(WRITE "${WORK_DIR}/tiny.plan" "scenario cap streams=8 users=4\nalgo greedy\n")
run_cli(1 sweep --plan "${WORK_DIR}/tiny.plan" --algos exact)
if(NOT cli_err MATCHES "conflicts with --plan")
  message(FATAL_ERROR "plan/flag conflict not rejected:\n${cli_err}")
endif()
run_cli(0 sweep --plan "${WORK_DIR}/tiny.plan" --replicates 2)

# --- perf: smoke suite, BENCH JSON, speedup gate, flag strictness ------------
run_cli(0 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf.json")
file(READ "${WORK_DIR}/perf.json" perf_json)
if(NOT perf_json MATCHES "\"bench\":\"perf\"")
  message(FATAL_ERROR "perf JSON missing bench id:\n${perf_json}")
endif()
if(NOT perf_json MATCHES "\"objective_match\":true")
  message(FATAL_ERROR "perf JSON reports no matching objectives:\n${perf_json}")
endif()
if(NOT perf_json MATCHES "\"provenance\"")
  message(FATAL_ERROR "perf JSON missing provenance block:\n${perf_json}")
endif()
if(NOT perf_json MATCHES "\"delta\"")
  message(FATAL_ERROR "perf JSON missing delta measurements:\n${perf_json}")
endif()
# --min-speedup 0 disables the gate; an absurd requirement trips it.
run_cli(0 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf2.json" --min-speedup 0)
run_cli(3 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf3.json" --min-speedup 100000)
run_cli(1 perf --smoek 1)
if(NOT cli_err MATCHES "--smoek")
  message(FATAL_ERROR "typo'd perf flag not rejected:\n${cli_err}")
endif()

# --- perf --baseline: regression diff against a committed BENCH JSON --------
# Self-diff with a huge allowance passes; a sub-unity allowance trips the
# gate deterministically (every ratio is positive).
run_cli(0 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf4.json"
        --baseline "${WORK_DIR}/perf.json" --max-regress 1000)
if(NOT cli_out MATCHES "wall_ratio")
  message(FATAL_ERROR "perf --baseline printed no diff table:\n${cli_out}")
endif()
run_cli(3 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf5.json"
        --baseline "${WORK_DIR}/perf.json" --max-regress 0.000001)
if(NOT cli_err MATCHES "regression past --max-regress")
  message(FATAL_ERROR "perf baseline gate did not trip:\n${cli_err}")
endif()
# A malformed baseline or threshold is rejected before benchmarking.
run_cli(1 perf --smoke 1 --baseline "${WORK_DIR}/does-not-exist.json")
file(WRITE "${WORK_DIR}/not-json.json" "this is not json")
run_cli(1 perf --smoke 1 --baseline "${WORK_DIR}/not-json.json")
run_cli(1 perf --smoke 1 --max-regress 2x)
if(NOT cli_err MATCHES "max-regress")
  message(FATAL_ERROR "partial --max-regress parse not rejected:\n${cli_err}")
endif()
# The machine-independent gate: identical evals self-diff under a tight
# threshold passes even when wall clocks are noisy.
run_cli(0 perf --smoke 1 --reps 1 --out "${WORK_DIR}/perf6.json"
        --baseline "${WORK_DIR}/perf.json" --max-regress 1.05
        --regress-metric evals)
run_cli(1 perf --smoke 1 --regress-metric fastest)
if(NOT cli_err MATCHES "regress-metric")
  message(FATAL_ERROR "bad --regress-metric value not rejected:\n${cli_err}")
endif()

# --- enumeration: perf --threads and the committed frontier plan -------------
# --threads routes to the enum cases' parallel DFS and is recorded in the
# per-case "threads" field; replay counters ride the same JSON.
run_cli(0 perf --smoke 1 --reps 1 --filter enum --threads 2
        --out "${WORK_DIR}/perf-enum-t2.json")
file(READ "${WORK_DIR}/perf-enum-t2.json" perf_t2_json)
if(NOT perf_t2_json MATCHES "\"threads\":2")
  message(FATAL_ERROR "perf --threads 2 not recorded per case:\n${perf_t2_json}")
endif()
if(NOT perf_t2_json MATCHES "\"frames_reused\":")
  message(FATAL_ERROR "perf JSON missing replay counters:\n${perf_t2_json}")
endif()
run_cli(1 perf --threads 0)
if(NOT cli_err MATCHES "--threads")
  message(FATAL_ERROR "perf --threads 0 not rejected:\n${cli_err}")
endif()
# The committed depth x threads frontier plan parses and runs end to end;
# the threads axis must not move the objective aggregates (deterministic
# reduction), which the sweep's own per-cell min==max check would expose
# as a spread — here we just pin that both axis points ran ok.
get_filename_component(_cli_tests_dir "${CMAKE_SCRIPT_MODE_FILE}" DIRECTORY)
get_filename_component(_repo_root "${_cli_tests_dir}" DIRECTORY)
run_cli(0 sweep --plan "${_repo_root}/bench/plans/enum_frontier.plan"
        --csv "${WORK_DIR}/enum_frontier.csv")
file(READ "${WORK_DIR}/enum_frontier.csv" frontier_csv)
if(NOT frontier_csv MATCHES "threads=2")
  message(FATAL_ERROR "frontier plan lost its threads axis:\n${frontier_csv}")
endif()
if(frontier_csv MATCHES "requires a unit-skew")
  message(FATAL_ERROR "frontier plan has failing cells:\n${frontier_csv}")
endif()

# --- serving sessions: gen-events -> serve round-trip ------------------------
run_cli(0 gen-events "${WORK_DIR}/cap.vd" --events 50 --seed 9
        --out "${WORK_DIR}/cap.events")
file(READ "${WORK_DIR}/cap.events" events_text)
if(NOT events_text MATCHES "vdist-events 1")
  message(FATAL_ERROR "gen-events missing header:\n${events_text}")
endif()
# Event traces are deterministic functions of (instance, seed).
run_cli(0 gen-events "${WORK_DIR}/cap.vd" --events 50 --seed 9
        --out "${WORK_DIR}/cap2.events")
file(READ "${WORK_DIR}/cap2.events" events_text2)
if(NOT events_text STREQUAL events_text2)
  message(FATAL_ERROR "gen-events is not deterministic across invocations")
endif()
run_cli(1 gen-events "${WORK_DIR}/cap.vd" --sede 9)
if(NOT cli_err MATCHES "--sede")
  message(FATAL_ERROR "typo'd gen-events flag not rejected:\n${cli_err}")
endif()
# All three policies replay the trace with per-event parity checks:
# resolve must be bit-identical to a from-scratch solve of the
# materialized overlay, repair must stay within the quality bound.
foreach(policy repair resolve online)
  run_cli(0 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
          --policy ${policy} --check 1 --json "${WORK_DIR}/serve-${policy}.json")
  file(READ "${WORK_DIR}/serve-${policy}.json" serve_json)
  if(NOT serve_json MATCHES "\"serve\":\"${policy}\"")
    message(FATAL_ERROR "serve JSON missing policy id:\n${serve_json}")
  endif()
  if(NOT serve_json MATCHES "\"timeline\"")
    message(FATAL_ERROR "serve JSON missing timeline:\n${serve_json}")
  endif()
endforeach()
# serve consumes every flag itself and needs its inputs.
run_cli(1 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --polcy repair)
if(NOT cli_err MATCHES "--polcy")
  message(FATAL_ERROR "typo'd serve flag not rejected:\n${cli_err}")
endif()
run_cli(1 serve "${WORK_DIR}/cap.vd")
if(NOT cli_err MATCHES "--events")
  message(FATAL_ERROR "serve without --events not rejected:\n${cli_err}")
endif()
run_cli(1 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --policy fastest)
if(NOT cli_err MATCHES "repair|resolve|online")
  message(FATAL_ERROR "bad --policy value not rejected:\n${cli_err}")
endif()

# --- sharded serving: --shards is a pure config flip -------------------------
# Replaying one trace under resolve with 1 and 4 shards must report the
# bit-identical end-state objective (the ShardedSession parity contract,
# checked per event by --check 1 on the sharded run too).
run_cli(0 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --policy resolve --shards 1 --json "${WORK_DIR}/serve-s1.json")
run_cli(0 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --policy resolve --shards 4 --check 1 --json "${WORK_DIR}/serve-s4.json")
file(READ "${WORK_DIR}/serve-s1.json" serve_s1)
file(READ "${WORK_DIR}/serve-s4.json" serve_s4)
if(NOT serve_s4 MATCHES "\"shards\":4")
  message(FATAL_ERROR "sharded serve JSON missing shard count:\n${serve_s4}")
endif()
string(REGEX MATCH "\"objective\":[^,]*" obj_s1 "${serve_s1}")
string(REGEX MATCH "\"objective\":[^,]*" obj_s4 "${serve_s4}")
if(NOT obj_s1 STREQUAL obj_s4 OR obj_s1 STREQUAL "")
  message(FATAL_ERROR
    "sharded serve objective diverged: '${obj_s1}' vs '${obj_s4}'")
endif()
# ServeConfig validation reaches the CLI: out-of-range shard counts and
# the online-policy restriction (Section 5's allocator is sequential) are
# rejected before any event is applied.
run_cli(1 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --shards 0)
if(NOT cli_err MATCHES "shards")
  message(FATAL_ERROR "bad --shards value not rejected:\n${cli_err}")
endif()
run_cli(1 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/cap.events"
        --policy online --shards 2)
if(NOT cli_err MATCHES "online")
  message(FATAL_ERROR "online+shards not rejected:\n${cli_err}")
endif()

# --- gen-events declared params: every knob is a flag ------------------------
# The event-mix weights and scale ranges gen/events.h declares are CLI
# flags; the summary line echoes the resolved configuration.
run_cli(0 gen-events "${WORK_DIR}/cap.vd" --events 30 --seed 5
        --w-stream-add 0 --w-capacity 4 --cap-scale-min 0.9
        --cap-scale-max 1.1 --out "${WORK_DIR}/mix.events")
if(NOT cli_err MATCHES "w-capacity=4")
  message(FATAL_ERROR "gen-events summary missing override:\n${cli_err}")
endif()
run_cli(1 gen-events "${WORK_DIR}/cap.vd" --events 30 --w-utility abc)
if(NOT cli_err MATCHES "w-utility")
  message(FATAL_ERROR "bad gen-events weight not rejected:\n${cli_err}")
endif()

# --- perf --filter: label-subset runs ----------------------------------------
run_cli(0 perf --smoke 1 --reps 1 --filter greedy
        --out "${WORK_DIR}/perf-filter.json")
file(READ "${WORK_DIR}/perf-filter.json" perf_filter)
if(NOT perf_filter MATCHES "greedy-plain")
  message(FATAL_ERROR "perf --filter dropped matching cases:\n${perf_filter}")
endif()
if(perf_filter MATCHES "bands" OR perf_filter MATCHES "serve-")
  message(FATAL_ERROR "perf --filter kept non-matching cases:\n${perf_filter}")
endif()
run_cli(1 perf --smoke 1 --reps 1 --filter no-such-case)
if(NOT cli_err MATCHES "no-such-case")
  message(FATAL_ERROR "unmatched perf --filter not rejected:\n${cli_err}")
endif()

# --- distributed sweep: cache round-trip and --list-cells dry run ------------
# Worker-less --cache runs exercise the content-addressed cache without a
# network: the first run executes every cell, the second recalls all of
# them, and the deterministic CSVs are byte-identical.
set(cache_dir "${WORK_DIR}/cell-cache")
file(REMOVE_RECURSE "${cache_dir}")
run_cli(0 sweep --scenario cap --set users=5 --axis streams=8,12
        --algos greedy,pipeline --replicates 2 --deterministic 1
        --cache "${cache_dir}" --csv "${WORK_DIR}/dist1.csv")
if(NOT cli_err MATCHES "dist: cells=4 cached=0 executed=4")
  message(FATAL_ERROR "first cached sweep did not execute all cells:\n${cli_err}")
endif()
run_cli(0 sweep --scenario cap --set users=5 --axis streams=8,12
        --algos greedy,pipeline --replicates 2 --deterministic 1
        --cache "${cache_dir}" --csv "${WORK_DIR}/dist2.csv")
if(NOT cli_err MATCHES "dist: cells=4 cached=4 executed=0")
  message(FATAL_ERROR "second cached sweep re-executed cells:\n${cli_err}")
endif()
file(READ "${WORK_DIR}/dist1.csv" dist1_csv)
file(READ "${WORK_DIR}/dist2.csv" dist2_csv)
if(NOT dist1_csv STREQUAL dist2_csv)
  message(FATAL_ERROR "cached sweep CSV differs from the executed one")
endif()
# The dry run prints one keyed row per cell, all cached by now.
run_cli(0 sweep --scenario cap --set users=5 --axis streams=8,12
        --algos greedy,pipeline --replicates 2 --deterministic 1
        --cache "${cache_dir}" --list-cells 1)
if(NOT cli_out MATCHES "list-cells: 4 cells, 4 cached")
  message(FATAL_ERROR "--list-cells missed cached cells:\n${cli_out}")
endif()
if(cli_out MATCHES "miss")
  message(FATAL_ERROR "--list-cells reported misses on a full cache:\n${cli_out}")
endif()
# A malformed workers file is rejected with its line number.
file(WRITE "${WORK_DIR}/bad-workers.txt" "localhost notaport\n")
run_cli(1 sweep --scenario cap --algos greedy
        --workers "${WORK_DIR}/bad-workers.txt")
if(NOT cli_err MATCHES "workers file line 1")
  message(FATAL_ERROR "bad workers file not rejected:\n${cli_err}")
endif()

# --- adversarial workload families: gen-events --family ----------------------
# Every family is a deterministic trace generator behind the same flag
# surface; the summary line echoes the resolved family=... param line.
run_cli(0 gen-events "${WORK_DIR}/cap.vd" --family flash-crowd --events 40
        --seed 3 --out "${WORK_DIR}/flash.events")
if(NOT cli_err MATCHES "family=flash-crowd")
  message(FATAL_ERROR "gen-events --family summary missing family:\n${cli_err}")
endif()
run_cli(0 gen-events "${WORK_DIR}/cap.vd" --family flash-crowd --events 40
        --seed 3 --out "${WORK_DIR}/flash2.events")
file(READ "${WORK_DIR}/flash.events" flash_a)
file(READ "${WORK_DIR}/flash2.events" flash_b)
if(NOT flash_a STREQUAL flash_b)
  message(FATAL_ERROR "gen-events --family is not deterministic")
endif()
# Typo'd family params and unknown families are rejected strictly.
run_cli(1 gen-events "${WORK_DIR}/cap.vd" --family zipf-drift --alpa 1.2)
if(NOT cli_err MATCHES "--alpa")
  message(FATAL_ERROR "typo'd family param not rejected:\n${cli_err}")
endif()
run_cli(1 gen-events "${WORK_DIR}/cap.vd" --family flash-crwod)
if(NOT cli_err MATCHES "flash-crwod")
  message(FATAL_ERROR "unknown family not named in error:\n${cli_err}")
endif()
# The scenarios listing covers the event-trace families too.
run_cli(0 scenarios)
foreach(family zipf-drift flash-crowd diurnal hetero-cap)
  if(NOT cli_out MATCHES "${family}")
    message(FATAL_ERROR "'vdist_cli scenarios' does not list ${family}:\n${cli_out}")
  endif()
endforeach()
# An adversarial trace replays through serve with per-event resolve
# parity, like any other event trace.
run_cli(0 serve "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/flash.events"
        --policy resolve --check 1 --json "${WORK_DIR}/serve-flash.json")

# --- compete: online-vs-offline competitive ratios ---------------------------
# The differential contract end to end: resolve's ratio against the
# default offline reference is exactly 1 at every checkpoint, so a
# --min-ratio 1.0 gate passes...
run_cli(0 compete "${WORK_DIR}/cap.vd" --family flash-crowd --seed 3
        --trace events=40 --policy resolve --every 10 --min-ratio 1.0
        --json "${WORK_DIR}/compete.json")
file(READ "${WORK_DIR}/compete.json" compete_json)
if(NOT compete_json MATCHES "\"min_ratio\":1[,.]")
  message(FATAL_ERROR "compete JSON min_ratio is not exactly 1:\n${compete_json}")
endif()
if(NOT compete_json MATCHES "\"checkpoints\":")
  message(FATAL_ERROR "compete JSON missing checkpoints:\n${compete_json}")
endif()
# ...and an unreachable gate trips exit 5 deterministically.
run_cli(5 compete "${WORK_DIR}/cap.vd" --family flash-crowd --seed 3
        --trace events=40 --policy resolve --every 10 --min-ratio 1.5)
if(NOT cli_err MATCHES "violates gate")
  message(FATAL_ERROR "compete gate violation not reported:\n${cli_err}")
endif()
# A committed event FILE replays too (repair within its declared bound).
run_cli(0 compete "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/flash.events"
        --policy repair --every 10 --min-ratio 0.94
        --csv "${WORK_DIR}/compete.csv")
file(READ "${WORK_DIR}/compete.csv" compete_csv)
if(NOT compete_csv MATCHES "event,online,offline,ratio")
  message(FATAL_ERROR "compete CSV missing header:\n${compete_csv}")
endif()
# compete consumes every flag itself and rejects ambiguous trace sources.
run_cli(1 compete "${WORK_DIR}/cap.vd" --family flash-crowd --evry 10)
if(NOT cli_err MATCHES "--evry")
  message(FATAL_ERROR "typo'd compete flag not rejected:\n${cli_err}")
endif()
run_cli(1 compete "${WORK_DIR}/cap.vd" --events "${WORK_DIR}/flash.events"
        --family flash-crowd)
if(NOT cli_err MATCHES "not both")
  message(FATAL_ERROR "compete events/family conflict not rejected:\n${cli_err}")
endif()
run_cli(1 compete "${WORK_DIR}/cap.vd" --family flash-crowd --min-ratio 0.9x)
if(NOT cli_err MATCHES "min-ratio")
  message(FATAL_ERROR "partial --min-ratio parse not rejected:\n${cli_err}")
endif()

# --- unknown subcommands must fail loudly ------------------------------------
run_cli(1 frobnicate)
if(NOT cli_err MATCHES "unknown command 'frobnicate'")
  message(FATAL_ERROR "unknown subcommand not reported:\n${cli_err}")
endif()
run_cli(0 help)

message(STATUS "vdist_cli round-trip tests passed")
