// End-to-end tests of the distributed sweep executor over loopback
// sockets: worker handshake, byte-identical merged artifacts, the
// content-addressed cache, and retry on worker death.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "dist/cache.h"
#include "dist/net.h"
#include "dist/scheduler.h"
#include "dist/worker.h"
#include "engine/sweep.h"

namespace vdist::dist {
namespace {

// 2 scenario cells x 2 algorithm cells x 2 replicates = 4 cells.
engine::SweepPlan tiny_plan() {
  engine::SweepPlan plan;
  engine::ScenarioSpec base;
  base.name = "cap";
  base.params.set("users", 5);
  base.seed = 100;
  plan.scenarios = {base};
  plan.scenario_axes = {{"streams", {"8", "12"}}};
  plan.algorithms = {{.name = "greedy"}, {.name = "pipeline"}};
  plan.replicates = 2;
  return plan;
}

engine::SweepOptions det_options() {
  engine::SweepOptions options;
  options.deterministic = true;  // wall clocks are the only run-variant
  return options;
}

std::string csv_of(const engine::SweepResult& result) {
  std::ostringstream os;
  engine::write_csv(os, result);
  return os.str();
}

std::string json_of(const engine::SweepResult& result) {
  std::ostringstream os;
  engine::write_json(os, result);
  return os.str();
}

// A scratch cache directory, wiped at both ends of the test.
struct TempCacheDir {
  explicit TempCacheDir(const char* name)
      : path(::testing::TempDir() + name) {
    std::filesystem::remove_all(path);
  }
  ~TempCacheDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(Dist, ParseWorkersAcceptsCommentsAndCapacities) {
  std::istringstream is(
      "# my cluster\n"
      "127.0.0.1 9090 4\n"
      "\n"
      "10.0.0.2 9091   # advertised capacity\n");
  const std::vector<WorkerSpec> workers = parse_workers(is);
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].host, "127.0.0.1");
  EXPECT_EQ(workers[0].port, 9090);
  EXPECT_EQ(workers[0].capacity, 4u);
  EXPECT_EQ(workers[1].host, "10.0.0.2");
  EXPECT_EQ(workers[1].capacity, 0u);

  std::istringstream bad_port("localhost notaport\n");
  EXPECT_THROW((void)parse_workers(bad_port), std::runtime_error);
  std::istringstream trailing("localhost 9090 2 surprise\n");
  EXPECT_THROW((void)parse_workers(trailing), std::runtime_error);
}

TEST(Dist, WorkerlessModeMatchesRunSweepByteForByte) {
  const engine::SweepPlan plan = tiny_plan();
  const engine::SweepResult reference = run_sweep(plan, det_options());
  DistStats stats;
  const engine::SweepResult local =
      run_distributed_sweep(plan, {}, det_options(), {}, &stats);
  EXPECT_EQ(csv_of(local), csv_of(reference));
  EXPECT_EQ(json_of(local), json_of(reference));
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.cached, 0u);
}

TEST(Dist, TwoWorkersProduceByteIdenticalArtifacts) {
  const engine::SweepPlan plan = tiny_plan();
  const engine::SweepResult reference = run_sweep(plan, det_options());

  Worker w1({.port = 0, .capacity = 2});
  Worker w2({.port = 0, .capacity = 2});
  std::thread t1([&] { w1.serve(); });
  std::thread t2([&] { w2.serve(); });

  DistOptions dist;
  dist.shutdown_workers = true;  // serve() returns after the sweep
  DistStats stats;
  const engine::SweepResult merged = run_distributed_sweep(
      plan, {{"127.0.0.1", w1.port()}, {"127.0.0.1", w2.port()}},
      det_options(), dist, &stats);
  t1.join();
  t2.join();

  EXPECT_EQ(csv_of(merged), csv_of(reference));
  EXPECT_EQ(json_of(merged), json_of(reference));
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.retried, 0u);
}

TEST(Dist, SecondRunIsServedEntirelyFromTheCache) {
  const engine::SweepPlan plan = tiny_plan();
  TempCacheDir cache("vdist_dist_cache_test");

  DistOptions dist;
  dist.cache_dir = cache.path;
  DistStats first_stats;
  const engine::SweepResult first =
      run_distributed_sweep(plan, {}, det_options(), dist, &first_stats);
  EXPECT_EQ(first_stats.executed, 4u);
  EXPECT_EQ(first_stats.cached, 0u);

  DistStats second_stats;
  const engine::SweepResult second =
      run_distributed_sweep(plan, {}, det_options(), dist, &second_stats);
  EXPECT_EQ(second_stats.executed, 0u);  // 0 cells re-solved
  EXPECT_EQ(second_stats.cached, 4u);
  EXPECT_EQ(csv_of(second), csv_of(first));
  EXPECT_EQ(json_of(second), json_of(first));

  // A different base seed is a different cell identity: full miss.
  engine::SweepOptions reseeded = det_options();
  reseeded.batch.base_seed = 99;
  DistStats third_stats;
  (void)run_distributed_sweep(plan, {}, reseeded, dist, &third_stats);
  EXPECT_EQ(third_stats.cached, 0u);
  EXPECT_EQ(third_stats.executed, 4u);
}

TEST(Dist, ListCellsReportsKeysAndCacheStatus) {
  const engine::SweepPlan plan = tiny_plan();
  TempCacheDir cache("vdist_dist_list_test");

  std::vector<CellStatus> rows = list_cells(plan, det_options(), cache.path);
  ASSERT_EQ(rows.size(), 4u);
  for (const CellStatus& row : rows) {
    EXPECT_EQ(row.key.size(), 64u);
    EXPECT_FALSE(row.cached);
  }

  DistOptions dist;
  dist.cache_dir = cache.path;
  (void)run_distributed_sweep(plan, {}, det_options(), dist, nullptr);
  rows = list_cells(plan, det_options(), cache.path);
  for (const CellStatus& row : rows) EXPECT_TRUE(row.cached);
}

TEST(Dist, KeptInstancesAreRejected) {
  engine::SweepOptions options = det_options();
  options.keep_instances = true;
  EXPECT_THROW((void)run_distributed_sweep(tiny_plan(), {}, options, {},
                                           nullptr),
               std::invalid_argument);
}

TEST(Dist, WorkerRefusesAVersionMismatchAndSurvivesIt) {
  Worker worker({.port = 0, .capacity = 1});
  std::thread serving([&] { worker.serve(); });

  {
    Socket sock = connect_to("127.0.0.1", worker.port());
    send_frame(sock, encode(HelloMsg{kProtocolVersion + 1, 0}));
    FrameReader reader;
    const auto reply = reader.recv_frame(sock);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kError);
  }

  // The worker must still serve a well-versioned scheduler afterwards.
  {
    Socket sock = connect_to("127.0.0.1", worker.port());
    send_frame(sock, encode(HelloMsg{kProtocolVersion, 0}));
    FrameReader reader;
    const auto reply = reader.recv_frame(sock);
    ASSERT_TRUE(reply.has_value());
    const HelloMsg hello = decode_hello(*reply);
    EXPECT_EQ(hello.version, kProtocolVersion);
    EXPECT_EQ(hello.capacity, 1u);
    // Heartbeats echo verbatim.
    send_frame(sock, encode(HeartbeatMsg{12345}));
    const auto echo = reader.recv_frame(sock);
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(decode_heartbeat(*echo).token, 12345u);
    send_frame(sock, encode_shutdown());
  }
  serving.join();
}

TEST(Dist, CellsOnADeadWorkerAreRetriedElsewhere) {
  const engine::SweepPlan plan = tiny_plan();
  const engine::SweepResult reference = run_sweep(plan, det_options());

  // The fake worker: handshakes, takes one assignment, drops the
  // connection. The real worker is bound (connections queue in its
  // backlog) but not serving yet, so the fake is guaranteed to be the
  // one that receives work first — no race on who gets assigned.
  Listener fake(0);
  Worker real({.port = 0, .capacity = 1});
  std::thread dying([&] {
    Socket sock = fake.accept();
    FrameReader reader;
    const auto hello = reader.recv_frame(sock);
    ASSERT_TRUE(hello.has_value());
    send_frame(sock, encode(HelloMsg{kProtocolVersion, 1}));
    const auto assign = reader.recv_frame(sock);
    ASSERT_TRUE(assign.has_value());
    EXPECT_EQ(assign->type, MsgType::kCellAssign);
    // Die mid-job.
  });

  DistOptions dist;
  dist.shutdown_workers = true;
  DistStats stats;
  engine::SweepResult merged;
  std::thread scheduling([&] {
    merged = run_distributed_sweep(
        plan,
        {{"127.0.0.1", fake.port(), 1}, {"127.0.0.1", real.port(), 1}},
        det_options(), dist, &stats);
  });
  dying.join();  // the fake has taken (and dropped) its cell
  std::thread serving([&] { real.serve(); });
  scheduling.join();
  serving.join();

  EXPECT_GE(stats.retried, 1u);
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_EQ(stats.executed, 4u);  // every cell still solved exactly once
  EXPECT_EQ(csv_of(merged), csv_of(reference));
}

TEST(Dist, AllWorkersDeadIsALoudError) {
  Listener doomed(0);
  std::thread dying([&] {
    Socket sock = doomed.accept();
    FrameReader reader;
    (void)reader.recv_frame(sock);  // hello, never answered
  });
  EXPECT_THROW((void)run_distributed_sweep(
                   tiny_plan(), {{"127.0.0.1", doomed.port(), 1}},
                   det_options(), {}, nullptr),
               std::runtime_error);
  dying.join();
}

}  // namespace
}  // namespace vdist::dist
