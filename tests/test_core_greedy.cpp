#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/submodular.h"
#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::core {
namespace {

using model::build_cap_instance;
using model::Instance;

TEST(Greedy, RequiresCapForm) {
  const Instance skewed = model::build_smd_instance(
      {1.0}, 10.0, {5.0}, {{0, 0, 2.0, 1.0}});
  EXPECT_THROW(greedy_unit_skew(skewed), std::invalid_argument);
  model::InstanceBuilder b(2, 1);
  b.set_budget(0, 1.0);
  b.set_budget(1, 1.0);
  const Instance mmd = std::move(b).build();
  EXPECT_THROW(greedy_unit_skew(mmd), std::invalid_argument);
}

TEST(Greedy, PicksByCostEffectivenessOrder) {
  // Effectiveness: s0 = 6/2 = 3, s1 = 5/5 = 1, s2 = 8/4 = 2.
  const Instance inst = build_cap_instance(
      {2.0, 5.0, 4.0}, 100.0, {100.0},
      {{0, 0, 6.0}, {0, 1, 5.0}, {0, 2, 8.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  ASSERT_EQ(g.trace.considered.size(), 3u);
  EXPECT_EQ(g.trace.considered[0], 0);
  EXPECT_EQ(g.trace.considered[1], 2);
  EXPECT_EQ(g.trace.considered[2], 1);
  EXPECT_DOUBLE_EQ(g.capped_utility, 19.0);
}

TEST(Greedy, SkipsUnaffordableAndContinues) {
  // s0 (eff 3) then s1 (cost 9 won't fit after s0: 2+9 > 10), then s2 fits.
  const Instance inst = build_cap_instance(
      {2.0, 9.0, 4.0}, 10.0, {100.0},
      {{0, 0, 6.0}, {0, 1, 24.0}, {0, 2, 8.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  EXPECT_EQ(g.trace.skipped_budget, 1u);
  EXPECT_DOUBLE_EQ(g.assignment.server_cost(0), 6.0);
  EXPECT_DOUBLE_EQ(g.capped_utility, 14.0);
  EXPECT_FALSE(g.assignment.has(0, 1));
}

TEST(Greedy, SaturatesUsersAtMostOnce) {
  // Cap 3, each stream worth 2: second assignment overshoots (semi-
  // feasible), third adds nothing and is not assigned.
  const Instance inst = build_cap_instance(
      {1.0, 1.0, 1.0}, 100.0, {3.0},
      {{0, 0, 2.0}, {0, 1, 2.0}, {0, 2, 2.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  EXPECT_DOUBLE_EQ(g.capped_utility, 3.0);
  EXPECT_DOUBLE_EQ(g.assignment.utility(), 4.0) << "raw may exceed the cap";
  EXPECT_EQ(g.assignment.streams_of(0).size(), 2u);
  const auto rep = model::validate(g.assignment);
  EXPECT_EQ(rep.feasibility, model::Feasibility::kSemiFeasible);
}

TEST(Greedy, ZeroCostStreamsTakenFirst) {
  const Instance inst = build_cap_instance(
      {0.0, 1.0}, 1.0, {100.0}, {{0, 0, 0.5}, {0, 1, 50.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  EXPECT_EQ(g.trace.considered[0], 0);
  EXPECT_TRUE(g.assignment.has(0, 0));
  EXPECT_TRUE(g.assignment.has(0, 1));
}

TEST(Greedy, FractionalResidualDrivesSelection) {
  // Two users. s1 saturates user 0 exactly; afterwards s0's residual
  // utility is zero and s2 is the only stream still worth anything.
  const Instance inst = build_cap_instance(
      {1.0, 2.0, 1.0}, 100.0, {9.0, 10.0},
      {{0, 0, 4.0},               // s0: user 0 only, eff 4
       {0, 1, 9.0}, {1, 1, 1.0},  // s1: eff (9+1)/2 = 5 initially
       {1, 2, 3.0}});             // s2: eff 3
  const GreedyResult g = greedy_unit_skew(inst);
  // First pick: s1 (eff 5). Then user0 rem = 0 => s0 eff 0; s2 eff 3.
  ASSERT_GE(g.trace.considered.size(), 2u);
  EXPECT_EQ(g.trace.considered[0], 1);
  EXPECT_EQ(g.trace.considered[1], 2);
  EXPECT_DOUBLE_EQ(g.capped_utility, 9.0 + 1.0 + 3.0);
}

TEST(Greedy, ServerBudgetNeverViolated) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 30;
    cfg.num_users = 12;
    cfg.budget_fraction = 0.25;
    cfg.seed = seed;
    const Instance inst = gen::random_cap_instance(cfg);
    const GreedyResult g = greedy_unit_skew(inst);
    EXPECT_TRUE(model::validate(g.assignment).server_feasible());
    EXPECT_LE(g.assignment.server_cost(0), inst.budget(0) * (1 + 1e-9));
  }
}

TEST(Greedy, MatchesSubmodularSetFunctionGreedy) {
  // Algorithm 1's fractional residual w̄(S) equals the marginal of the
  // capped set function (Lemma 2.1); both greedy paths must agree.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 18;
    cfg.num_users = 7;
    cfg.seed = seed * 31 + 5;
    const Instance inst = gen::random_cap_instance(cfg);
    const GreedyResult g = greedy_unit_skew(inst);
    CapUtilityOracle oracle(inst);
    std::vector<double> costs(inst.num_streams());
    for (std::size_t s = 0; s < costs.size(); ++s)
      costs[s] = inst.cost(static_cast<model::StreamId>(s), 0);
    const SubmodularResult sub =
        knapsack_greedy(oracle, costs, inst.budget(0), {.lazy = false});
    EXPECT_NEAR(g.capped_utility, sub.value, 1e-9)
        << "seed " << cfg.seed;
  }
}

TEST(BestSingleStream, PicksMaxTotalUtility) {
  const Instance inst = build_cap_instance(
      {1.0, 1.0}, 10.0, {10.0, 10.0},
      {{0, 0, 2.0}, {1, 0, 2.0}, {0, 1, 3.0}});
  const model::Assignment amax = best_single_stream(inst);
  EXPECT_TRUE(amax.has(0, 0));
  EXPECT_TRUE(amax.has(1, 0));
  EXPECT_DOUBLE_EQ(amax.utility(), 4.0);
}

TEST(FixedGreedy, BlockingExampleOfSection22) {
  // The paper's weakness example: a tiny high-effectiveness stream blocks
  // a budget-filling stream of much larger absolute utility. Plain greedy
  // gets 1.1; the fix returns the single big stream (10).
  const Instance inst = build_cap_instance(
      {1.0, 10.0}, 10.0, {100.0},
      {{0, 0, 1.1}, {0, 1, 10.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  EXPECT_DOUBLE_EQ(g.capped_utility, 1.1);
  const SmdSolveResult fixed = solve_unit_skew(inst, SmdMode::kFeasible);
  EXPECT_DOUBLE_EQ(fixed.utility, 10.0);
  EXPECT_EQ(fixed.variant, "Amax");
}

TEST(SplitLastStream, PartitionsPerUserAssignments) {
  const Instance inst = build_cap_instance(
      {1.0, 1.0, 1.0}, 100.0, {3.0},
      {{0, 0, 2.0}, {0, 1, 2.0}, {0, 2, 2.0}});
  const GreedyResult g = greedy_unit_skew(inst);
  const FeasibleSplit split = split_last_stream(inst, g.assignment);
  // w(A1) + w(A2) >= w(A) (raw), and both are feasible.
  EXPECT_GE(split.w1 + split.w2 + 1e-12, g.assignment.utility());
  EXPECT_TRUE(model::validate(split.a1).feasible());
  EXPECT_TRUE(model::validate(split.a2).feasible());
  EXPECT_EQ(split.a2.streams_of(0).size(), 1u);
}

TEST(SolveUnitSkew, FeasibleModeAlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 25;
    cfg.num_users = 10;
    cfg.cap_fraction = 0.4;  // binding caps
    cfg.seed = seed * 7;
    const Instance inst = gen::random_cap_instance(cfg);
    const SmdSolveResult r = solve_unit_skew(inst, SmdMode::kFeasible);
    EXPECT_TRUE(model::validate(r.assignment).feasible()) << "seed " << seed;
    EXPECT_NEAR(r.utility, r.assignment.utility(), 1e-9);
  }
}

TEST(SolveUnitSkew, AugmentedModeIsSemiFeasibleAndNoWorse) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 20;
    cfg.num_users = 8;
    cfg.cap_fraction = 0.4;
    cfg.seed = seed * 13;
    const Instance inst = gen::random_cap_instance(cfg);
    const SmdSolveResult feas = solve_unit_skew(inst, SmdMode::kFeasible);
    const SmdSolveResult aug = solve_unit_skew(inst, SmdMode::kAugmented);
    EXPECT_TRUE(model::validate(aug.assignment).server_feasible());
    // The augmented candidate set dominates the feasible one in capped
    // utility (greedy >= max(A1, A2) because w(A1)+w(A2) >= w(A) splits).
    EXPECT_GE(aug.utility + 1e-9, feas.utility * 0.5);
  }
}

TEST(GreedySeeded, SeedsAreForceAssignedFirst) {
  const Instance inst = build_cap_instance(
      {5.0, 1.0}, 6.0, {100.0}, {{0, 0, 1.0}, {0, 1, 3.0}});
  const model::StreamId seeds[] = {0};
  const GreedyResult g = greedy_unit_skew_seeded(inst, seeds);
  EXPECT_TRUE(g.assignment.has(0, 0));
  EXPECT_TRUE(g.assignment.has(0, 1));
  ASSERT_FALSE(g.trace.considered.empty());
  EXPECT_EQ(g.trace.considered[0], 0);
}

// A seed with zero total utility never enters the selection pool (dead-
// stream pruning), but seeding it must still force-add and charge it —
// pool membership is not the duplicate check.
TEST(GreedySeeded, ZeroUtilitySeedIsStillChargedOnce) {
  // Stream 0 has no interested users; cost 5 of budget 6.
  const Instance inst = build_cap_instance(
      {5.0, 1.0, 1.0}, 6.0, {10.0}, {{0, 1, 4.0}, {0, 2, 3.0}});
  const model::StreamId seeds[] = {0, 0};  // duplicate dead seed
  const GreedyResult g = greedy_unit_skew_seeded(inst, seeds);
  // The charge leaves room for exactly one of streams 1/2: the greedy
  // adds stream 1 (higher effectiveness) and budget-skips stream 2.
  EXPECT_EQ(g.trace.num_considered, 3u);
  EXPECT_EQ(g.trace.skipped_budget, 1u);
  EXPECT_EQ(g.capped_utility, 4.0);
  EXPECT_EQ(g.assignment.range_size(), 1u);
  EXPECT_TRUE(g.assignment.has(0, 1));
}

TEST(GreedySeeded, OversizedSeedThrows) {
  const Instance inst = build_cap_instance(
      {5.0, 6.0}, 6.0, {100.0}, {{0, 0, 1.0}, {0, 1, 3.0}});
  const model::StreamId seeds[] = {0, 1};  // 5 + 6 > 6
  EXPECT_THROW(greedy_unit_skew_seeded(inst, seeds), std::invalid_argument);
}

TEST(Greedy, EmptyInstanceDegenerates) {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 5.0);
  const Instance inst = std::move(b).build();
  const GreedyResult g = greedy_unit_skew(inst);
  EXPECT_EQ(g.capped_utility, 0.0);
  EXPECT_TRUE(g.trace.considered.empty());
}

}  // namespace
}  // namespace vdist::core
