// Randomized property tests: long random operation sequences checked
// against naive reference implementations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/allocate_online.h"
#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "model/assignment.h"
#include "model/validate.h"
#include "util/rng.h"

namespace vdist {
namespace {

// --- Assignment vs. reference ----------------------------------------------

// Reference model: plain sets, everything recomputed from scratch.
struct ReferenceAssignment {
  const model::Instance* inst;
  std::map<model::UserId, std::set<model::StreamId>> pairs;

  bool assign(model::UserId u, model::StreamId s) {
    return pairs[u].insert(s).second;
  }
  bool unassign(model::UserId u, model::StreamId s) {
    return pairs[u].erase(s) > 0;
  }
  [[nodiscard]] double utility() const {
    double total = 0;
    for (const auto& [u, streams] : pairs)
      for (model::StreamId s : streams) total += inst->utility(u, s);
    return total;
  }
  [[nodiscard]] double server_cost(int i) const {
    std::set<model::StreamId> range;
    for (const auto& [u, streams] : pairs)
      range.insert(streams.begin(), streams.end());
    double total = 0;
    for (model::StreamId s : range) total += inst->cost(s, i);
    return total;
  }
  [[nodiscard]] double user_load(model::UserId u, int j) const {
    double total = 0;
    const auto it = pairs.find(u);
    if (it == pairs.end()) return 0;
    for (model::StreamId s : it->second)
      if (const auto e = inst->find_edge(u, s))
        total += inst->edge_load(*e, j);
    return total;
  }
  [[nodiscard]] std::size_t range_size() const {
    std::set<model::StreamId> range;
    for (const auto& [u, streams] : pairs)
      range.insert(streams.begin(), streams.end());
    return range.size();
  }
};

TEST(AssignmentFuzz, MatchesReferenceOverRandomOps) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::RandomMmdConfig cfg;
    cfg.num_streams = 15;
    cfg.num_users = 8;
    cfg.num_server_measures = 2;
    cfg.num_user_measures = 2;
    cfg.seed = seed;
    const model::Instance inst = gen::random_mmd_instance(cfg);

    util::Rng rng(seed * 7919);
    model::Assignment a(inst);
    ReferenceAssignment ref{&inst, {}};
    for (int op = 0; op < 600; ++op) {
      const auto u = static_cast<model::UserId>(
          rng.uniform_int(0, static_cast<std::int64_t>(inst.num_users()) - 1));
      const auto s = static_cast<model::StreamId>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.num_streams()) - 1));
      if (rng.bernoulli(0.65)) {
        EXPECT_EQ(a.assign(u, s), ref.assign(u, s));
      } else {
        EXPECT_EQ(a.unassign(u, s), ref.unassign(u, s));
      }
      if (op % 97 == 0) {
        EXPECT_NEAR(a.utility(), ref.utility(), 1e-9);
        for (int i = 0; i < inst.num_server_measures(); ++i)
          EXPECT_NEAR(a.server_cost(i), ref.server_cost(i), 1e-9);
      }
    }
    // Full final cross-check.
    EXPECT_NEAR(a.utility(), ref.utility(), 1e-9);
    EXPECT_EQ(a.range_size(), ref.range_size());
    for (std::size_t uu = 0; uu < inst.num_users(); ++uu)
      for (int j = 0; j < inst.num_user_measures(); ++j)
        EXPECT_NEAR(a.user_load(static_cast<model::UserId>(uu), j),
                    ref.user_load(static_cast<model::UserId>(uu), j), 1e-9);
    const auto rep = model::validate(a);
    EXPECT_NEAR(rep.recomputed_utility, a.utility(), 1e-9);
  }
}

// --- Allocator state under offer/release churn ------------------------------

TEST(AllocatorFuzz, LoadsReturnToZeroAfterFullRelease) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<double> budgets(m);
    for (auto& bi : budgets) bi = rng.uniform(50.0, 200.0);
    core::ExponentialCostAllocator alloc(budgets, {64.0, true});
    const int num_users = 6;
    for (int u = 0; u < num_users; ++u)
      alloc.add_user({rng.uniform(10.0, 30.0)});

    struct Live {
      std::vector<double> costs;
      std::vector<core::ExponentialCostAllocator::Candidate> cands;
      std::vector<std::size_t> taken;
    };
    std::vector<Live> live;
    for (int op = 0; op < 300; ++op) {
      if (!live.empty() && rng.bernoulli(0.4)) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        alloc.release(live[idx].costs, live[idx].cands, live[idx].taken);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        continue;
      }
      Live offer;
      offer.costs.resize(m);
      for (auto& c : offer.costs) c = rng.uniform(0.1, 3.0);
      const int fans = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int f = 0; f < fans; ++f)
        offer.cands.push_back({static_cast<model::UserId>(
                                   rng.uniform_int(0, num_users - 1)),
                               rng.uniform(0.5, 5.0),
                               {rng.uniform(0.1, 2.0)}});
      const auto d = alloc.offer(offer.costs, offer.cands);
      if (d.accepted) {
        offer.taken = d.taken;
        live.push_back(std::move(offer));
      }
    }
    // Release everything still live; all loads must return to zero.
    for (const Live& l : live) alloc.release(l.costs, l.cands, l.taken);
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(alloc.server_load(static_cast<int>(i)), 0.0, 1e-9)
          << "trial " << trial;
    for (int u = 0; u < num_users; ++u)
      EXPECT_NEAR(alloc.user_load(u, 0), 0.0, 1e-9) << "trial " << trial;
  }
}

TEST(AllocatorFuzz, GuardedOfferNeverOverrunsBudgets) {
  util::Rng rng(911);
  std::vector<double> budgets{20.0, 15.0};
  core::ExponentialCostAllocator alloc(budgets, {8.0, true});
  const auto u = alloc.add_user({25.0});
  double shadow0 = 0.0, shadow1 = 0.0, shadow_user = 0.0;
  for (int op = 0; op < 500; ++op) {
    std::vector<double> costs{rng.uniform(0.2, 6.0), rng.uniform(0.2, 5.0)};
    std::vector<core::ExponentialCostAllocator::Candidate> cands{
        {u, rng.uniform(1.0, 10.0), {rng.uniform(0.2, 4.0)}}};
    const auto d = alloc.offer(costs, cands);
    if (d.accepted) {
      shadow0 += costs[0];
      shadow1 += costs[1];
      for (std::size_t t : d.taken) shadow_user += cands[t].loads[0];
    }
    EXPECT_LE(shadow0, budgets[0] * (1 + 1e-9));
    EXPECT_LE(shadow1, budgets[1] * (1 + 1e-9));
    EXPECT_LE(shadow_user, 25.0 * (1 + 1e-9));
  }
  EXPECT_NEAR(alloc.server_load(0), shadow0 / budgets[0], 1e-9);
}

// --- IPTV variant generation -------------------------------------------------

TEST(IptvVariants, GroupsAreWellFormed) {
  gen::IptvConfig cfg;
  cfg.num_channels = 90;
  cfg.num_users = 50;
  cfg.variants_per_channel = 3;
  cfg.seed = 8;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  ASSERT_EQ(w.variant_group.size(), w.instance.num_streams());
  EXPECT_EQ(w.instance.num_streams(), 90u);  // 30 logical x 3 variants
  std::map<std::int32_t, int> sizes;
  for (std::int32_t g : w.variant_group) {
    EXPECT_GE(g, 0);
    ++sizes[g];
  }
  EXPECT_EQ(sizes.size(), 30u);
  for (const auto& [g, n] : sizes) EXPECT_EQ(n, 3) << "group " << g;
  // Variants of one channel share the popularity rank but differ in class.
  for (std::size_t s = 0; s + 2 < w.channels.size(); s += 3) {
    EXPECT_EQ(w.channels[s].popularity_rank,
              w.channels[s + 1].popularity_rank);
    EXPECT_NE(static_cast<int>(w.channels[s].klass),
              static_cast<int>(w.channels[s + 2].klass));
  }
}

TEST(IptvVariants, SingleVariantModeHasNoGroups) {
  gen::IptvConfig cfg;
  cfg.num_channels = 30;
  cfg.num_users = 10;
  cfg.seed = 9;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  for (std::int32_t g : w.variant_group) EXPECT_EQ(g, -1);
}

TEST(IptvVariants, UsersWantAllVariantsOfChosenChannels) {
  gen::IptvConfig cfg;
  cfg.num_channels = 60;
  cfg.num_users = 40;
  cfg.variants_per_channel = 2;
  cfg.interests_per_user = 10;
  cfg.seed = 10;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  // For every (user, stream) edge on an SD variant, the HD sibling edge
  // should exist too unless the builder zeroed it for capacity.
  std::size_t pairs_checked = 0;
  for (std::size_t s = 0; s + 1 < w.instance.num_streams(); s += 2) {
    const auto sd = static_cast<model::StreamId>(s);
    const auto hd = static_cast<model::StreamId>(s + 1);
    for (model::UserId u : w.instance.users_of(hd)) {
      // HD fits => SD (smaller bitrate) must fit as well.
      EXPECT_GT(w.instance.utility(u, sd), 0.0)
          << "user " << u << " wants hd of ch" << s / 2 << " but not sd";
      ++pairs_checked;
    }
  }
  EXPECT_GT(pairs_checked, 0u);
}

}  // namespace
}  // namespace vdist
