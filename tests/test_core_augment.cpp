#include "core/augment.h"

#include <gtest/gtest.h>

#include "core/mmd_solver.h"
#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::core {
namespace {

using model::Instance;

TEST(Augment, AddsFreeRiders) {
  // Stream carried for user 0; user 1 also wants it and has capacity:
  // multicast makes the addition free.
  const Instance inst = model::build_cap_instance(
      {2.0}, 2.0, {5.0, 5.0}, {{0, 0, 3.0}, {1, 0, 4.0}});
  model::Assignment a(inst);
  a.assign(0, 0);
  const AugmentStats stats = augment_assignment(inst, a);
  EXPECT_EQ(stats.users_added, 1u);
  EXPECT_TRUE(a.has(1, 0));
  EXPECT_DOUBLE_EQ(stats.utility_gained, 4.0);
  EXPECT_TRUE(model::validate(a).feasible());
}

TEST(Augment, AddsStreamsWithinResidualBudget) {
  const Instance inst = model::build_cap_instance(
      {1.0, 1.0, 1.0}, 2.5, {100.0},
      {{0, 0, 5.0}, {0, 1, 4.0}, {0, 2, 3.0}});
  model::Assignment a(inst);
  a.assign(0, 0);  // cost 1 used; residual 1.5 admits one more stream
  const AugmentStats stats = augment_assignment(inst, a);
  EXPECT_EQ(stats.streams_added, 1u);
  EXPECT_TRUE(a.has(0, 1)) << "densest remaining stream";
  EXPECT_FALSE(a.has(0, 2)) << "third stream no longer fits";
  EXPECT_TRUE(model::validate(a).feasible());
}

TEST(Augment, RespectsUserCapacities) {
  // Residual budget admits the stream, but the user cap (3) does not.
  const Instance inst = model::build_cap_instance(
      {1.0, 1.0}, 10.0, {3.0}, {{0, 0, 3.0}, {0, 1, 2.0}});
  model::Assignment a(inst);
  a.assign(0, 0);  // saturates the cap exactly
  const AugmentStats stats = augment_assignment(inst, a);
  EXPECT_EQ(stats.users_added, 0u);
  EXPECT_EQ(stats.streams_added, 0u);
  EXPECT_TRUE(model::validate(a).feasible());
}

TEST(Augment, NeverDecreasesUtilityAndStaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    gen::RandomMmdConfig cfg;
    cfg.num_streams = 25;
    cfg.num_users = 10;
    cfg.num_server_measures = 3;
    cfg.num_user_measures = 2;
    cfg.budget_fraction = 0.3;
    cfg.capacity_fraction = 0.4;
    cfg.seed = seed;
    const Instance inst = gen::random_mmd_instance(cfg);
    MmdSolverOptions bare;
    bare.augment = false;
    MmdSolveResult r = solve_mmd(inst, bare);
    const double before = r.utility;
    const AugmentStats stats = augment_assignment(inst, r.assignment);
    EXPECT_GE(stats.utility_gained, 0.0);
    EXPECT_NEAR(r.assignment.utility(), before + stats.utility_gained, 1e-9);
    EXPECT_TRUE(model::validate(r.assignment).feasible()) << "seed " << seed;
  }
}

TEST(Augment, SolverOptionMatchesManualPass) {
  gen::RandomMmdConfig cfg;
  cfg.num_streams = 20;
  cfg.num_users = 8;
  cfg.num_server_measures = 2;
  cfg.num_user_measures = 2;
  cfg.seed = 77;
  const Instance inst = gen::random_mmd_instance(cfg);
  MmdSolverOptions bare;
  bare.augment = false;
  MmdSolveResult manual = solve_mmd(inst, bare);
  augment_assignment(inst, manual.assignment);
  const MmdSolveResult with_option = solve_mmd(inst);  // augment defaults on
  EXPECT_NEAR(with_option.utility, manual.assignment.utility(), 1e-9);
}

TEST(Augment, RecoversWastedBudgetOnIptv) {
  gen::IptvConfig cfg;
  cfg.num_channels = 80;
  cfg.num_users = 100;
  cfg.seed = 5;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  MmdSolverOptions bare;
  bare.augment = false;
  const MmdSolveResult without = solve_mmd(w.instance, bare);
  const MmdSolveResult with_aug = solve_mmd(w.instance);
  EXPECT_GT(with_aug.utility, without.utility)
      << "the transform leaves budget on the table; augment must reclaim it";
  EXPECT_TRUE(model::validate(with_aug.assignment).feasible());
}

TEST(Augment, NoOpOnSaturatedAssignment) {
  const Instance inst = model::build_cap_instance(
      {1.0}, 1.0, {2.0}, {{0, 0, 2.0}});
  model::Assignment a(inst);
  a.assign(0, 0);
  const AugmentStats stats = augment_assignment(inst, a);
  EXPECT_EQ(stats.users_added + stats.streams_added, 0u);
}

}  // namespace
}  // namespace vdist::core
