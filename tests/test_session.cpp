// engine::Session — the serving-session parity suite of ISSUE 5:
//   * the resolve policy is bit-identical to a one-shot from-scratch
//     solve of the materialized overlay after EVERY event (objective and
//     assignment pairs);
//   * the repair policy stays within the configured quality bound of a
//     from-scratch solve at every prefix when drift checks run per event;
//   * `serve` sweeps are deterministic across BatchRunner thread counts.
#include "engine/session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/greedy.h"
#include "engine/batch.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "gen/events.h"
#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::engine {
namespace {

using model::EventType;
using model::Instance;
using model::InstanceEvent;
using model::StreamId;
using model::UserId;

Instance churn_base(std::uint64_t seed, std::size_t streams = 40,
                    std::size_t users = 16) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = streams;
  cfg.num_users = users;
  cfg.seed = seed;
  return gen::random_cap_instance(cfg);
}

std::vector<InstanceEvent> churn_trace(const Instance& inst,
                                       std::size_t events,
                                       std::uint64_t seed) {
  gen::EventTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = seed;
  return gen::make_event_trace(inst, cfg);
}

// Pair set of an assignment as sorted (user, stream) tuples, comparable
// across assignments built on different (id-compatible) instances.
std::vector<std::pair<UserId, StreamId>> pairs_of(const model::Assignment& a,
                                                  std::size_t num_users) {
  std::vector<std::pair<UserId, StreamId>> out;
  for (std::size_t u = 0; u < num_users; ++u)
    for (const StreamId s : a.streams_of(static_cast<UserId>(u)))
      out.emplace_back(static_cast<UserId>(u), s);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Session, RequiresCapForm) {
  model::InstanceBuilder b(2, 1);
  b.set_budget(0, 1.0);
  b.set_budget(1, 1.0);
  const Instance mmd = std::move(b).build();
  EXPECT_THROW(Session{mmd}, std::invalid_argument);
}

TEST(Session, ParsePolicyNamesRoundTrip) {
  EXPECT_EQ(parse_serve_policy("repair"), ServePolicy::kRepair);
  EXPECT_EQ(parse_serve_policy("resolve"), ServePolicy::kResolve);
  EXPECT_EQ(parse_serve_policy("online"), ServePolicy::kOnline);
  EXPECT_THROW(parse_serve_policy("rapair"), std::invalid_argument);
  EXPECT_STREQ(to_string(ServePolicy::kRepair), "repair");
}

// The differential anchor of the whole API: replaying any event trace
// under the resolve policy must equal solving the materialized snapshot
// from scratch — bit-identical objective, identical pair set — at every
// prefix, across seeds.
TEST(Session, ResolveBitIdenticalToFromScratchAtEveryPrefix) {
  for (const std::uint64_t seed : {3u, 17u}) {
    const Instance inst = churn_base(seed);
    const auto trace = churn_trace(inst, 80, seed + 100);
    SessionOptions opts;
    opts.policy = ServePolicy::kResolve;
    Session session(inst, opts);
    std::size_t step = 0;
    for (const InstanceEvent& event : trace) {
      session.apply(event);
      ++step;
      const Instance snap = session.overlay().materialize();
      const core::SmdSolveResult fresh = core::solve_unit_skew(snap);
      ASSERT_EQ(session.objective(), fresh.utility)
          << "seed " << seed << " event " << step;
      ASSERT_EQ(pairs_of(session.assignment(), inst.num_users()),
                pairs_of(fresh.assignment, snap.num_users()))
          << "seed " << seed << " event " << step;
    }
    EXPECT_EQ(session.counters().events, trace.size());
    EXPECT_EQ(session.counters().full_resolves, trace.size() + 1);
  }
}

// With per-event drift checks the repair policy must stay within the
// configured bound of a from-scratch solve at every prefix.
TEST(Session, RepairStaysWithinQualityBoundAtEveryPrefix) {
  for (const std::uint64_t seed : {5u, 23u}) {
    const Instance inst = churn_base(seed);
    const auto trace = churn_trace(inst, 120, seed + 7);
    SessionOptions opts;
    opts.policy = ServePolicy::kRepair;
    opts.quality_bound = 0.05;
    opts.refresh_interval = 1;  // check (and self-correct) every event
    Session session(inst, opts);
    for (const InstanceEvent& event : trace) {
      session.apply(event);
      const Instance snap = session.overlay().materialize();
      const core::SmdSolveResult fresh = core::solve_unit_skew(snap);
      const double drift = (fresh.utility - session.objective()) /
                           std::max(fresh.utility, 1.0);
      ASSERT_LE(drift, opts.quality_bound + 1e-9)
          << "seed " << seed << " after " << session.counters().events
          << " events";
    }
    // Local repair must actually carry most events — a session that
    // resolves everything is not exercising the incremental path.
    EXPECT_GT(session.counters().local_repairs,
              session.counters().full_resolves);
    EXPECT_EQ(session.counters().drift_checks, trace.size());
  }
}

// The repair policy's maintained winner is a genuinely feasible solution
// for the world it serves (the materialized overlay).
TEST(Session, RepairAssignmentFeasibleOnTheMaterializedWorld) {
  const Instance inst = churn_base(9);
  const auto trace = churn_trace(inst, 100, 31);
  SessionOptions opts;
  opts.policy = ServePolicy::kRepair;
  Session session(inst, opts);
  for (const InstanceEvent& event : trace) session.apply(event);
  const Instance snap = session.overlay().materialize();
  model::Assignment on_snap(snap);
  for (const auto& [u, s] : pairs_of(session.assignment(), inst.num_users()))
    on_snap.assign(u, s);
  EXPECT_TRUE(model::validate(on_snap).feasible());
}

TEST(Session, RepairStatsReportWhatHappened) {
  const Instance inst = model::build_cap_instance(
      {2.0, 3.0, 4.0}, 6.0, {10.0, 12.0},
      {{0, 0, 4.0}, {1, 0, 5.0}, {0, 1, 6.0}, {1, 2, 7.0}});
  SessionOptions opts;
  opts.policy = ServePolicy::kRepair;
  opts.refresh_interval = 0;  // isolate the local path
  Session session(inst, opts);
  const double opening = session.objective();
  EXPECT_GT(opening, 0.0);
  EXPECT_EQ(session.counters().full_resolves, 1u);  // the opening solve

  // Removing an added stream must release it and let the completion
  // spend the freed budget: dropping stream 1 (cost 3) leaves cost 2
  // committed, so stream 2 (cost 4) now fits B = 6.
  InstanceEvent remove;
  remove.type = EventType::kStreamRemove;
  remove.stream = 1;
  const RepairStats stats = session.apply(remove);
  EXPECT_EQ(stats.action, RepairAction::kLocalRepair);
  EXPECT_EQ(stats.streams_released, 1u);
  EXPECT_GE(stats.users_refreshed, 1u);
  EXPECT_GE(stats.streams_added, 1u);  // stream 2 now fits
  EXPECT_GT(stats.objective, 0.0);
  EXPECT_GE(stats.wall_ms, 0.0);

  InstanceEvent leave;
  leave.type = EventType::kUserLeave;
  leave.user = 1;
  const RepairStats leave_stats = session.apply(leave);
  EXPECT_EQ(leave_stats.streams_added, 0u)
      << "a departure frees nothing; no completion should run";
  EXPECT_LT(leave_stats.objective, stats.objective);
}

TEST(Session, AppendEventsGrowTheWorldUnderResolveParity) {
  const Instance inst = churn_base(13, 20, 8);
  SessionOptions opts;
  opts.policy = ServePolicy::kResolve;
  Session session(inst, opts);

  InstanceEvent join;
  join.type = EventType::kUserJoin;
  join.user = static_cast<UserId>(inst.num_users());  // append
  join.value = 25.0;
  join.interests = {{/*stream=*/0, model::kInvalidUser, 5.0},
                    {/*stream=*/3, model::kInvalidUser, 4.0}};
  session.apply(join);
  EXPECT_EQ(session.overlay().num_users(), inst.num_users() + 1);
  EXPECT_EQ(session.overlay().generation(), 1u);

  InstanceEvent add;
  add.type = EventType::kStreamAdd;
  add.stream = static_cast<StreamId>(inst.num_streams());  // append
  add.value = 1.0;  // cost
  add.interests = {{model::kInvalidStream, /*user=*/0, 3.0},
                   {model::kInvalidStream, join.user, 2.0}};
  session.apply(add);
  EXPECT_EQ(session.overlay().num_streams(), inst.num_streams() + 1);

  const Instance snap = session.overlay().materialize();
  const core::SmdSolveResult fresh = core::solve_unit_skew(snap);
  EXPECT_EQ(session.objective(), fresh.utility);
  EXPECT_EQ(pairs_of(session.assignment(), snap.num_users()),
            pairs_of(fresh.assignment, snap.num_users()));
}

TEST(Session, AppendEventsRepairStaysBounded) {
  const Instance inst = churn_base(29, 20, 8);
  SessionOptions opts;
  opts.policy = ServePolicy::kRepair;
  opts.refresh_interval = 1;
  Session session(inst, opts);
  InstanceEvent join;
  join.type = EventType::kUserJoin;
  join.user = static_cast<UserId>(inst.num_users());
  join.value = 30.0;
  join.interests = {{/*stream=*/1, model::kInvalidUser, 6.0}};
  session.apply(join);
  const Instance snap = session.overlay().materialize();
  const core::SmdSolveResult fresh = core::solve_unit_skew(snap);
  EXPECT_LE((fresh.utility - session.objective()) /
                std::max(fresh.utility, 1.0),
            opts.quality_bound + 1e-9);
}

TEST(Session, OnlinePolicyServesAndReleases) {
  const Instance inst = churn_base(7, 30, 12);
  SessionOptions opts;
  opts.policy = ServePolicy::kOnline;
  Session session(inst, opts);
  const SessionCounters& counters = session.counters();
  EXPECT_EQ(counters.online_accepts + counters.online_rejects,
            inst.num_streams())
      << "the opening pass offers every alive stream once";
  const double before = session.objective();
  EXPECT_GT(before, 0.0);

  // A departure drops the departed user's served utility from the
  // ground-truth objective without revoking any decision.
  InstanceEvent leave;
  leave.type = EventType::kUserLeave;
  UserId served = model::kInvalidUser;
  for (std::size_t u = 0; u < inst.num_users() && served < 0; ++u)
    if (!session.assignment().streams_of(static_cast<UserId>(u)).empty())
      served = static_cast<UserId>(u);
  ASSERT_GE(served, 0);
  leave.user = served;
  const RepairStats stats = session.apply(leave);
  EXPECT_EQ(stats.action, RepairAction::kOnlineStep);
  EXPECT_LT(session.objective(), before);

  // Removing an accepted stream releases its budget and loads.
  InstanceEvent remove;
  remove.type = EventType::kStreamRemove;
  StreamId carried = model::kInvalidStream;
  for (std::size_t s = 0; s < inst.num_streams() && carried < 0; ++s)
    if (session.assignment().in_range(static_cast<StreamId>(s)))
      carried = static_cast<StreamId>(s);
  ASSERT_GE(carried, 0);
  remove.stream = carried;
  const RepairStats rstats = session.apply(remove);
  EXPECT_EQ(rstats.streams_released, 1u);
  EXPECT_FALSE(session.assignment().in_range(carried));
}

TEST(Session, OpenEmptyStartsWithNothingServed) {
  const Instance inst = churn_base(3, 15, 6);
  SessionOptions opts;
  opts.policy = ServePolicy::kRepair;
  opts.open_empty = true;
  Session session(inst, opts);
  EXPECT_EQ(session.objective(), 0.0);
  EXPECT_EQ(session.assignment().num_assigned_pairs(), 0u);
  InstanceEvent add;
  add.type = EventType::kStreamAdd;
  add.stream = 0;
  session.apply(add);
  EXPECT_TRUE(session.objective() > 0.0 ||
              session.assignment().num_assigned_pairs() == 0);
}

TEST(Session, InvalidEventIdsThrowAndLeaveStateIntact) {
  const Instance inst = churn_base(5, 10, 5);
  for (const ServePolicy policy :
       {ServePolicy::kRepair, ServePolicy::kResolve, ServePolicy::kOnline}) {
    SessionOptions opts;
    opts.policy = policy;
    Session session(inst, opts);
    const double before = session.objective();
    InstanceEvent bad;
    bad.type = EventType::kUserLeave;
    bad.user = 999;
    EXPECT_THROW(session.apply(bad), std::invalid_argument);
    InstanceEvent bad_stream;
    bad_stream.type = EventType::kStreamAdd;
    bad_stream.stream = 999;
    EXPECT_THROW(session.apply(bad_stream), std::invalid_argument);
    // A utility change names BOTH ids; a bad stream on a valid user must
    // be rejected before any pre-event snapshot reads the pair.
    InstanceEvent bad_pair;
    bad_pair.type = EventType::kUtilityChange;
    bad_pair.user = 0;
    bad_pair.stream = 999;
    bad_pair.value = 1.0;
    EXPECT_THROW(session.apply(bad_pair), std::invalid_argument);
    EXPECT_EQ(session.counters().events, 0u);
    EXPECT_EQ(session.objective(), before);
  }
}

// --- registry integration ---------------------------------------------------

TEST(ServeSolver, RegisteredAndStrictAboutOptions) {
  const SolverRegistry& registry = SolverRegistry::global();
  ASSERT_TRUE(registry.contains("serve"));
  const Instance inst = churn_base(2, 25, 10);
  SolveRequest req;
  req.instance = &inst;
  req.algorithm = "serve";
  req.options.set("policy", "resolve").set("events", 40);
  req.strict = true;
  const SolveResult r = engine::solve(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.objective, 0.0);
  EXPECT_EQ(r.stat("events"), 40.0);
  EXPECT_EQ(r.stat("full_resolves"), 41.0);  // opening + per event
  EXPECT_GT(r.stat("select_picks"), 0.0);

  SolveRequest typo = req;
  typo.options.set("polcy", "resolve");
  const SolveResult bad = engine::solve(typo);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("polcy"), std::string::npos);
}

TEST(ServeSolver, RepairTracksResolveObjectiveWithinBound) {
  const Instance inst = churn_base(8, 30, 12);
  SolveRequest req;
  req.instance = &inst;
  req.algorithm = "serve";
  req.seed = 5;
  req.options.set("events", 150).set("bound", 0.05).set("refresh", 1);
  req.options.set("policy", "repair");
  const SolveResult repair = engine::solve(req);
  req.options.set("policy", "resolve");
  const SolveResult resolve = engine::solve(req);
  ASSERT_TRUE(repair.ok) << repair.error;
  ASSERT_TRUE(resolve.ok) << resolve.error;
  // Same derived trace (same seed), so the end states are comparable.
  EXPECT_NEAR(repair.objective, resolve.objective,
              0.06 * std::max(resolve.objective, 1.0));
  EXPECT_GT(repair.stat("local_repairs"), repair.stat("full_resolves"));
}

TEST(ServeSolver, DeterministicAcrossBatchRunnerThreadCounts) {
  const Instance inst = churn_base(4, 30, 12);
  std::vector<SolveRequest> requests;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* policy : {"repair", "resolve", "online"}) {
      SolveRequest req;
      req.instance = &inst;
      req.algorithm = "serve";
      req.seed = seed;
      req.options.set("policy", policy).set("events", 60);
      requests.push_back(std::move(req));
    }
  }
  std::vector<std::vector<SolveResult>> runs;
  for (const unsigned threads : {1u, 4u})
    runs.push_back(solve_batch(requests, {.num_threads = threads}));
  ASSERT_EQ(runs[0].size(), requests.size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    ASSERT_TRUE(runs[0][i].ok) << runs[0][i].error;
    EXPECT_EQ(runs[0][i].objective, runs[1][i].objective) << i;
    EXPECT_EQ(runs[0][i].assignment->num_assigned_pairs(),
              runs[1][i].assignment->num_assigned_pairs())
        << i;
  }
}

TEST(ChurnScenario, RegisteredAndLayersOverUnitSkewBases) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  ASSERT_TRUE(registry.contains("churn"));
  ScenarioSpec spec;
  spec.name = "churn";
  spec.params.set("base", "cap").set("set", "streams=18,users=7");
  spec.params.set("events", 50);
  spec.seed = 6;
  const Instance churned = build_scenario(spec);
  EXPECT_EQ(churned.num_streams(), 18u);
  EXPECT_EQ(churned.num_users(), 7u);
  EXPECT_TRUE(churned.is_unit_skew());
  // Deterministic function of the spec.
  const Instance again = build_scenario(spec);
  EXPECT_EQ(churned.utility_upper_bound(), again.utility_upper_bound());
  // And genuinely different from the unchurned base.
  ScenarioSpec base;
  base.name = "cap";
  base.params.set("streams", 18).set("users", 7);
  base.seed = 6;
  const Instance plain = build_scenario(base);
  EXPECT_NE(churned.utility_upper_bound(), plain.utility_upper_bound());

  ScenarioSpec bad = spec;
  bad.params.set("base", "mmd");  // not unit-skew
  EXPECT_THROW(build_scenario(bad), std::invalid_argument);
}

}  // namespace
}  // namespace vdist::engine
