// workload::WorkloadRegistry — the adversarial trace families of ISSUE 10:
//   * every builtin family is registered, declares events/seed, and is a
//     deterministic function of (instance, params): same seed =>
//     byte-identical serialized trace, different seed => different trace;
//   * the churn family is byte-identical to gen::make_event_trace at the
//     declared defaults (the no-regression anchor for PR <= 9 traces);
//   * every family's trace round-trips through io/event_io.h and keeps the
//     resolve policy's materialize parity at the end state;
//   * the gen/events.h phase schedule composes piecewise weights without
//     disturbing single-phase byte-identity;
//   * the serve solver's `family` option reaches the registry and stays
//     deterministic across BatchRunner thread counts.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "engine/batch.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/session.h"
#include "gen/events.h"
#include "gen/random_instances.h"
#include "io/event_io.h"
#include "model/events.h"
#include "model/factory.h"
#include "model/instance.h"

namespace vdist::workload {
namespace {

using model::Instance;
using model::InstanceEvent;

const std::vector<std::string> kFamilies = {"churn", "zipf-drift",
                                            "flash-crowd", "diurnal",
                                            "hetero-cap"};

Instance base_instance(std::uint64_t seed, std::size_t streams = 30,
                       std::size_t users = 12) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = streams;
  cfg.num_users = users;
  cfg.seed = seed;
  return gen::random_cap_instance(cfg);
}

std::string serialize(const std::vector<InstanceEvent>& trace) {
  std::ostringstream os;
  io::save_events(os, trace);
  return os.str();
}

TEST(WorkloadRegistry, BuiltinFamiliesRegisteredInOrder) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  EXPECT_EQ(registry.names(), kFamilies);
  for (const std::string& name : kFamilies) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const WorkloadInfo& info = registry.model(name).info();
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.description.empty()) << name;
    // Every family is reproducible from (events, seed) at minimum.
    bool has_events = false, has_seed = false;
    for (const WorkloadParam& p : info.params) {
      if (std::string(p.key) == "events") has_events = true;
      if (std::string(p.key) == "seed") has_seed = true;
    }
    EXPECT_TRUE(has_events) << name;
    EXPECT_TRUE(has_seed) << name;
  }
  EXPECT_FALSE(registry.contains("zipf"));
  EXPECT_THROW(registry.model("zipf"), std::invalid_argument);
  try {
    (void)registry.model("zipf");
  } catch (const std::invalid_argument& e) {
    // The error lists the known families, scenario-registry style.
    EXPECT_NE(std::string(e.what()).find("flash-crowd"), std::string::npos);
  }
}

TEST(WorkloadRegistry, ResolveFoldsFallbacksAndRejectsUndeclaredKeys) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const Params params = registry.resolve("zipf-drift", {{"alpha", "1.2"}});
  EXPECT_EQ(params.get("alpha"), "1.2");
  EXPECT_EQ(params.get_count("events"),
            registry.resolve("zipf-drift", {}).get_count("events"));
  EXPECT_THROW(registry.resolve("zipf-drift", {{"alpa", "1.2"}}),
               std::invalid_argument);
}

TEST(WorkloadParams, TypedAccessorsValidate) {
  Params params({{"a", "0.5"}, {"b", "nope"}, {"c", "-3"}, {"d", "7"}});
  EXPECT_EQ(params.get_double("a"), 0.5);
  EXPECT_EQ(params.get_fraction("a"), 0.5);
  EXPECT_EQ(params.get_count("d"), 7u);
  EXPECT_THROW(params.get_double("b"), std::invalid_argument);
  EXPECT_THROW(params.get_count("c"), std::invalid_argument);
  EXPECT_THROW(params.get_fraction("d"), std::invalid_argument);
  EXPECT_THROW(params.get("missing"), std::invalid_argument);
}

TEST(WorkloadRegistry, ApplyOverridesParsesKeyValueLists) {
  std::map<std::string, std::string> overrides;
  apply_workload_overrides(overrides, "events=50,alpha=1.1");
  EXPECT_EQ(overrides.at("events"), "50");
  EXPECT_EQ(overrides.at("alpha"), "1.1");
  apply_workload_overrides(overrides, "");  // empty = none
  EXPECT_EQ(overrides.size(), 2u);
  EXPECT_THROW(apply_workload_overrides(overrides, "events"),
               std::invalid_argument);
}

TEST(WorkloadRegistry, ParamLineCarriesEveryDeclaredKey) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const WorkloadModel& model = registry.model("flash-crowd");
  const Params params = registry.resolve("flash-crowd", {{"seed", "9"}});
  const std::string line = workload_param_line(model, params);
  EXPECT_EQ(line.rfind("family=flash-crowd,", 0), 0u) << line;
  for (const WorkloadParam& p : model.info().params)
    EXPECT_NE(line.find(std::string(p.key) + "="), std::string::npos)
        << p.key;
  EXPECT_NE(line.find("seed=9"), std::string::npos);
}

// Same seed => byte-identical serialized trace; different seed =>
// different trace; declared trace length is exact. The determinism holds
// per family because every generator draws from one seeded util::Rng.
TEST(WorkloadRegistry, EveryFamilyDeterministicInSeed) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const Instance inst = base_instance(11);
  for (const std::string& name : kFamilies) {
    const std::map<std::string, std::string> overrides = {{"events", "120"},
                                                          {"seed", "5"}};
    const auto a = registry.generate(name, inst, overrides);
    const auto b = registry.generate(name, inst, overrides);
    EXPECT_EQ(a.size(), 120u) << name;
    EXPECT_EQ(serialize(a), serialize(b)) << name;
    const auto other =
        registry.generate(name, inst, {{"events", "120"}, {"seed", "6"}});
    EXPECT_NE(serialize(a), serialize(other)) << name;
  }
}

// The compatibility anchor: family "churn" at declared defaults is the
// same trace gen::make_event_trace draws — PR <= 9 callers moved onto the
// registry without a byte of drift.
TEST(WorkloadRegistry, ChurnFamilyMatchesGenEventsByteForByte) {
  const Instance inst = base_instance(3);
  gen::EventTraceConfig cfg;
  cfg.num_events = 90;
  cfg.seed = 17;
  const auto direct = gen::make_event_trace(inst, cfg);
  const auto via_registry = WorkloadRegistry::global().generate(
      "churn", inst, {{"events", "90"}, {"seed", "17"}});
  EXPECT_EQ(serialize(direct), serialize(via_registry));
}

TEST(WorkloadRegistry, EveryFamilyRoundTripsThroughEventIo) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const Instance inst = base_instance(21);
  for (const std::string& name : kFamilies) {
    const auto trace =
        registry.generate(name, inst, {{"events", "80"}, {"seed", "2"}});
    const std::string text = serialize(trace);
    std::istringstream is(text);
    const auto loaded = io::load_events(is);
    EXPECT_EQ(serialize(loaded), text) << name;
  }
}

// The parity-safety contract: replaying any family under the resolve
// policy keeps the backend bit-identical to a from-scratch solve of the
// materialized snapshot — checked at the end state here (the per-prefix
// version lives in test_competitive.cpp).
TEST(WorkloadRegistry, EveryFamilyKeepsResolveParity) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const Instance inst = base_instance(7);
  for (const std::string& name : kFamilies) {
    const auto trace =
        registry.generate(name, inst, {{"events", "100"}, {"seed", "13"}});
    engine::SessionOptions opts;
    opts.policy = engine::ServePolicy::kResolve;
    engine::Session session(inst, opts);
    for (const InstanceEvent& event : trace) session.apply(event);
    const Instance snap = session.overlay().materialize();
    const core::SmdSolveResult fresh = core::solve_unit_skew(snap);
    EXPECT_EQ(session.objective(), fresh.utility) << name;
  }
}

TEST(WorkloadRegistry, FamiliesRejectUnchurnableInstances) {
  // One stream, one user, no interest pairs: nothing to churn.
  const Instance empty = model::build_cap_instance({1.0}, 10.0, {5.0}, {});
  EXPECT_THROW(WorkloadRegistry::global().generate("zipf-drift", empty, {}),
               std::invalid_argument);
}

// --- gen/events.h phase schedule -------------------------------------------

TEST(EventPhases, EmptyScheduleIsByteIdenticalToSinglePhase) {
  const Instance inst = base_instance(5);
  gen::EventTraceConfig plain;
  plain.num_events = 100;
  plain.seed = 9;
  gen::EventTraceConfig one_phase = plain;
  gen::EventPhase phase;  // defaults mirror the config weights
  phase.until = 1.0;
  one_phase.phases = {phase};
  EXPECT_EQ(serialize(gen::make_event_trace(inst, plain)),
            serialize(gen::make_event_trace(inst, one_phase)));
}

TEST(EventPhases, PiecewiseWeightsShapeTheMix) {
  const Instance inst = base_instance(5, 40, 16);
  gen::EventTraceConfig cfg;
  cfg.num_events = 200;
  cfg.seed = 4;
  // First half: joins only among user events; second half: leaves only.
  gen::EventPhase joins;
  joins.until = 0.5;
  joins.w_user_leave = 0.0;
  joins.w_user_join = 8.0;
  joins.w_stream_remove = 0.0;
  joins.w_stream_add = 0.0;
  gen::EventPhase leaves = joins;
  leaves.until = 1.0;
  leaves.w_user_leave = 8.0;
  leaves.w_user_join = 0.0;
  cfg.phases = {joins, leaves};
  const auto trace = gen::make_event_trace(inst, cfg);
  ASSERT_EQ(trace.size(), 200u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].type == model::EventType::kUserLeave) {
      EXPECT_GE(i, 100u) << "leave drawn in the join-only phase";
    }
    if (trace[i].type == model::EventType::kUserJoin) {
      EXPECT_LT(i, 100u) << "join drawn in the leave-only phase";
    }
  }
}

TEST(EventPhases, ScheduleValidationRejectsMalformedPhases) {
  const Instance inst = base_instance(5);
  gen::EventTraceConfig cfg;
  cfg.num_events = 50;
  gen::EventPhase a, b;
  a.until = 0.6;
  b.until = 0.4;  // not strictly increasing
  cfg.phases = {a, b};
  EXPECT_THROW(gen::make_event_trace(inst, cfg), std::invalid_argument);
  gen::EventPhase neg;
  neg.until = 1.0;
  neg.w_capacity = -1.0;
  cfg.phases = {neg};
  EXPECT_THROW(gen::make_event_trace(inst, cfg), std::invalid_argument);
  gen::EventPhase zero;
  zero.until = 1.0;
  zero.w_user_leave = zero.w_user_join = zero.w_stream_remove =
      zero.w_stream_add = zero.w_capacity = zero.w_utility = 0.0;
  cfg.phases = {zero};
  EXPECT_THROW(gen::make_event_trace(inst, cfg), std::invalid_argument);
}

// --- engine integration -----------------------------------------------------

TEST(WorkloadServe, FamilyOptionReachesTheRegistry) {
  const Instance inst = base_instance(2, 25, 10);
  engine::SolveRequest req;
  req.instance = &inst;
  req.algorithm = "serve";
  req.seed = 5;
  req.options.set("policy", "resolve").set("events", 60);
  req.options.set("family", "flash-crowd");
  const engine::SolveResult r = engine::solve(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stat("events"), 60.0);

  engine::SolveRequest bad = req;
  bad.options.set("family", "flash-crwod");
  const engine::SolveResult rejected = engine::solve(bad);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("flash-crwod"), std::string::npos);
}

TEST(WorkloadServe, FamiliesDeterministicAcrossBatchRunnerThreadCounts) {
  const Instance inst = base_instance(4, 25, 10);
  std::vector<engine::SolveRequest> requests;
  for (const std::string& family : kFamilies) {
    for (const char* policy : {"repair", "resolve"}) {
      engine::SolveRequest req;
      req.instance = &inst;
      req.algorithm = "serve";
      req.seed = 3;
      req.options.set("policy", policy).set("events", 50);
      req.options.set("family", family);
      requests.push_back(std::move(req));
    }
  }
  std::vector<std::vector<engine::SolveResult>> runs;
  for (const unsigned threads : {1u, 4u})
    runs.push_back(engine::solve_batch(requests, {.num_threads = threads}));
  ASSERT_EQ(runs[0].size(), requests.size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    ASSERT_TRUE(runs[0][i].ok) << runs[0][i].error;
    EXPECT_EQ(runs[0][i].objective, runs[1][i].objective) << i;
  }
}

TEST(WorkloadScenarios, AdversarialFamiliesRegisteredAsScenarios) {
  const engine::ScenarioRegistry& registry =
      engine::ScenarioRegistry::global();
  for (const std::string& name : kFamilies) {
    if (name == "churn") continue;  // pre-existing registration
    ASSERT_TRUE(registry.contains(name)) << name;
    engine::ScenarioSpec spec;
    spec.name = name;
    spec.params.set("base", "cap").set("set", "streams=16,users=6");
    spec.params.set("events", 40);
    spec.seed = 8;
    const Instance built = engine::build_scenario(spec);
    EXPECT_EQ(built.num_streams(), 16u) << name;
    EXPECT_EQ(built.num_users(), 6u) << name;
    EXPECT_TRUE(built.is_unit_skew()) << name;
    const Instance again = engine::build_scenario(spec);
    EXPECT_EQ(built.utility_upper_bound(), again.utility_upper_bound())
        << name;
  }
}

}  // namespace
}  // namespace vdist::workload
