// Committed-reference pick tests: the kernel's exact output — the
// (user, stream) pair set and the bit-exact objective — is pinned to
// tests/data/select_reference.txt for every registered scenario × three
// seeds × all three strategies. The lazy==delta==naive differentials in
// test_select.cpp prove the strategies agree with *each other*; this
// suite proves they agree with the *past* — a layout or SIMD rework that
// shifts any pick (the exact failure mode of the SoA/AVX2 rebuild)
// breaks here even if it shifts all three strategies identically.
//
// Regenerate after an intentional pick change:
//   VDIST_UPDATE_SELECT_REFERENCE=1 ./build/vdist_tests \
//     --gtest_filter='SelectReference.*'
// The file lives in the source tree (VDIST_TESTS_DIR, stamped by CMake),
// so the rewrite lands in the checkout regardless of build directory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "assignment_pairs.h"
#include "core/select.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "model/instance.h"

#ifndef VDIST_TESTS_DIR
#define VDIST_TESTS_DIR "tests"
#endif

namespace vdist {
namespace {

using engine::ScenarioRegistry;
using engine::ScenarioSpec;
using engine::SolveRequest;
using engine::SolveResult;
using model::Instance;

constexpr const char* kReferencePath =
    VDIST_TESTS_DIR "/data/select_reference.txt";

// What the reference pins per (scenario, seed, algorithm): the objective
// double bit-for-bit, and the pair set as a count + order-independent
// digest (the pairs are hashed in sorted order).
struct ReferenceRow {
  std::uint64_t objective_bits = 0;
  std::uint64_t pair_count = 0;
  std::uint64_t pair_hash = 0;

  bool operator==(const ReferenceRow&) const = default;
};

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

ReferenceRow row_of(const SolveResult& r) {
  ReferenceRow row;
  double objective = r.objective;
  std::memcpy(&row.objective_bits, &objective, sizeof objective);
  const auto pair_list = testing::pairs(r.solution());
  row.pair_count = pair_list.size();
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const auto& [u, s] : pair_list) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(u));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(s));
  }
  row.pair_hash = h;
  return row;
}

// "scenario seed algorithm" — strategies share one row by construction
// (they are pick-for-pick identical; the test asserts all three against
// the same committed row).
std::string key_of(const std::string& scenario, std::uint64_t seed,
                   const std::string& algorithm) {
  return scenario + " " + std::to_string(seed) + " " + algorithm;
}

std::map<std::string, ReferenceRow> load_reference(const std::string& path) {
  std::map<std::string, ReferenceRow> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string scenario, algorithm;
    std::uint64_t seed = 0;
    ReferenceRow row;
    ls >> scenario >> seed >> algorithm >> std::hex >> row.objective_bits >>
        std::dec >> row.pair_count >> std::hex >> row.pair_hash;
    if (!ls.fail())
      rows[key_of(scenario, seed, algorithm)] = row;
  }
  return rows;
}

void write_reference(const std::string& path,
                     const std::map<std::string, ReferenceRow>& rows) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << "# Committed kernel reference: scenario seed algorithm "
         "objective_bits(hex) pair_count pair_hash(hex)\n"
      << "# Regenerate: VDIST_UPDATE_SELECT_REFERENCE=1 ./vdist_tests "
         "--gtest_filter='SelectReference.*'\n";
  for (const auto& [key, row] : rows) {
    out << key << ' ' << std::hex << row.objective_bits << std::dec << ' '
        << row.pair_count << ' ' << std::hex << row.pair_hash << std::dec
        << '\n';
  }
}

SolveResult solve_with(const Instance& inst, const std::string& algorithm,
                       const char* select) {
  SolveRequest req;
  req.instance = &inst;
  req.algorithm = algorithm;
  req.options.set("select", select);
  if (algorithm == "enum") req.options.set("depth", 1);
  req.strict = true;
  return engine::solve(req);
}

// The algorithms the reference pins: the universal pipeline entry point
// on every scenario, plus the Algorithm-1 greedy (the rebuilt hot path's
// primary consumer) where the instance form admits it.
std::vector<std::string> reference_algorithms(const Instance& inst) {
  std::vector<std::string> algos = {"pipeline"};
  if (inst.is_smd() && inst.is_unit_skew()) algos.push_back("greedy-plain");
  return algos;
}

TEST(SelectReference, AllStrategiesMatchCommittedPicks) {
  const bool update =
      std::getenv("VDIST_UPDATE_SELECT_REFERENCE") != nullptr;
  const std::map<std::string, ReferenceRow> committed =
      load_reference(kReferencePath);
  if (!update) {
    ASSERT_FALSE(committed.empty())
        << kReferencePath << " missing or empty; regenerate with "
        << "VDIST_UPDATE_SELECT_REFERENCE=1";
  }

  std::map<std::string, ReferenceRow> regenerated;
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  for (const std::string& name : registry.names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ScenarioSpec spec;
      spec.name = name;
      spec.seed = seed;
      const Instance inst = engine::build_scenario(spec);
      for (const std::string& algo : reference_algorithms(inst)) {
        const std::string key = key_of(name, seed, algo);
        // All three strategies are asserted against the one committed
        // row — pick-for-pick identity to the past AND to each other.
        for (const char* strategy : {"delta", "lazy", "naive"}) {
          const SolveResult r = solve_with(inst, algo, strategy);
          ASSERT_TRUE(r.ok) << key << "/" << strategy << ": " << r.error;
          const ReferenceRow row = row_of(r);
          if (update) {
            const auto [it, inserted] = regenerated.emplace(key, row);
            EXPECT_EQ(it->second, row)
                << key << "/" << strategy
                << ": strategies disagree while regenerating";
          } else {
            const auto it = committed.find(key);
            if (it == committed.end()) {
              ADD_FAILURE() << key << " not in " << kReferencePath
                            << "; regenerate with "
                            << "VDIST_UPDATE_SELECT_REFERENCE=1";
              continue;
            }
            EXPECT_EQ(it->second, row)
                << key << "/" << strategy
                << ": picks diverge from the committed reference";
          }
        }
      }
    }
  }
  if (update) write_reference(kReferencePath, regenerated);
}

}  // namespace
}  // namespace vdist
