// Degenerate-input coverage: every public entry point must behave sanely
// on empty/trivial/unbounded instances.
#include <gtest/gtest.h>

#include "baseline/policies.h"
#include "core/allocate_online.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/mmd_solver.h"
#include "core/partial_enum.h"
#include "core/skew_bands.h"
#include "model/factory.h"
#include "model/skew.h"
#include "model/validate.h"

namespace vdist {
namespace {

model::Instance empty_instance() {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 1.0);
  return std::move(b).build();
}

TEST(EdgeCases, EmptyInstanceThroughEveryAlgorithm) {
  const model::Instance inst = empty_instance();
  EXPECT_EQ(core::greedy_unit_skew(inst).capped_utility, 0.0);
  EXPECT_EQ(core::solve_unit_skew(inst).utility, 0.0);
  EXPECT_EQ(core::solve_smd_any_skew(inst).utility, 0.0);
  EXPECT_EQ(core::solve_mmd(inst).utility, 0.0);
  EXPECT_EQ(core::solve_exact(inst).utility, 0.0);
  EXPECT_EQ(core::allocate_online(inst).utility, 0.0);
  EXPECT_EQ(baseline::fcfs_admission(inst).utility, 0.0);
  EXPECT_EQ(core::partial_enum_unit_skew(inst).best.utility, 0.0);
  EXPECT_DOUBLE_EQ(model::local_skew(inst).alpha, 1.0);
  EXPECT_DOUBLE_EQ(model::global_skew(inst).gamma, 1.0);
}

TEST(EdgeCases, StreamsWithNoInterestedUsers) {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  b.add_stream({1.0});
  b.add_stream({1.0});
  const auto s2 = b.add_stream({1.0});
  const auto u = b.add_user({5.0});
  b.add_interest(u, s2, 2.0, {2.0});
  const model::Instance inst = std::move(b).build();
  const core::MmdSolveResult r = core::solve_mmd(inst);
  EXPECT_DOUBLE_EQ(r.utility, 2.0);
  EXPECT_EQ(r.assignment.range_size(), 1u) << "dead streams never carried";
}

TEST(EdgeCases, UsersWithNoInterests) {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  const auto s = b.add_stream({1.0});
  b.add_user({5.0});
  const auto u1 = b.add_user({5.0});
  b.add_user({5.0});
  b.add_interest(u1, s, 3.0, {3.0});
  const model::Instance inst = std::move(b).build();
  const core::MmdSolveResult r = core::solve_mmd(inst);
  EXPECT_DOUBLE_EQ(r.utility, 3.0);
  EXPECT_TRUE(model::validate(r.assignment).feasible());
}

TEST(EdgeCases, AllBudgetsUnbounded) {
  model::InstanceBuilder b(2, 1);
  b.set_budget(0, model::kUnbounded);
  b.set_budget(1, model::kUnbounded);
  const auto s0 = b.add_stream({100.0, 50.0});
  const auto s1 = b.add_stream({200.0, 80.0});
  const auto u = b.add_user({model::kUnbounded});
  b.add_interest(u, s0, 1.0, {1.0});
  b.add_interest(u, s1, 2.0, {2.0});
  const model::Instance inst = std::move(b).build();
  const core::MmdSolveResult r = core::solve_mmd(inst);
  EXPECT_DOUBLE_EQ(r.utility, 3.0) << "nothing binds: take everything";
  EXPECT_TRUE(model::validate(r.assignment).feasible());
  const core::ExactResult opt = core::solve_exact(inst);
  EXPECT_DOUBLE_EQ(opt.utility, 3.0);
}

TEST(EdgeCases, SingleStreamSingleUser) {
  const model::Instance inst =
      model::build_cap_instance({1.0}, 1.0, {2.0}, {{0, 0, 2.0}});
  EXPECT_DOUBLE_EQ(core::solve_mmd(inst).utility, 2.0);
  EXPECT_DOUBLE_EQ(core::solve_exact(inst).utility, 2.0);
  EXPECT_DOUBLE_EQ(core::allocate_online(inst).utility, 2.0);
  EXPECT_DOUBLE_EQ(baseline::fcfs_admission(inst).utility, 2.0);
}

TEST(EdgeCases, ZeroCostZeroLoadStream) {
  // Free in every sense: must always be taken by everyone interested.
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 1.0);
  const auto s = b.add_stream({0.0});
  const auto u0 = b.add_user({1.0});
  const auto u1 = b.add_user({1.0});
  b.add_interest(u0, s, 5.0, {0.0});
  b.add_interest(u1, s, 7.0, {0.0});
  const model::Instance inst = std::move(b).build();
  EXPECT_DOUBLE_EQ(core::solve_mmd(inst).utility, 12.0);
  EXPECT_DOUBLE_EQ(core::solve_exact(inst).utility, 12.0);
}

TEST(EdgeCases, UtilityCapZeroUserContributesNothing) {
  // A cap of 0 zeroes every edge (load > cap never true for load==w>0...
  // the builder drops w > 0 edges because w > 0 = K). Validate the
  // instance simply has no usable edges.
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  const auto s = b.add_stream({1.0});
  const auto u = b.add_user({0.0});
  b.add_interest(u, s, 2.0, {2.0});
  const model::Instance inst = std::move(b).build();
  EXPECT_EQ(inst.num_edges(), 0u);
  EXPECT_EQ(inst.num_edges_zeroed_by_capacity(), 1u);
  EXPECT_DOUBLE_EQ(core::solve_mmd(inst).utility, 0.0);
}

TEST(EdgeCases, TieBreakingIsDeterministic) {
  // Identical streams: repeated solves give identical assignments.
  const model::Instance inst = model::build_cap_instance(
      {2.0, 2.0, 2.0}, 4.0, {100.0},
      {{0, 0, 3.0}, {0, 1, 3.0}, {0, 2, 3.0}});
  const auto a = core::solve_mmd(inst);
  const auto b2 = core::solve_mmd(inst);
  EXPECT_EQ(a.utility, b2.utility);
  EXPECT_EQ(a.assignment.range(), b2.assignment.range());
}

TEST(EdgeCases, DuplicateStreamsSaturateBudgetExactly) {
  const model::Instance inst = model::build_cap_instance(
      {1.0, 1.0, 1.0, 1.0}, 4.0, {100.0},
      {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}});
  const auto r = core::solve_mmd(inst);
  EXPECT_DOUBLE_EQ(r.utility, 4.0) << "exact-fit budget must be fully used";
}

}  // namespace
}  // namespace vdist
