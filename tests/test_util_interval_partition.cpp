#include "util/interval_partition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace vdist::util {
namespace {

// Invariants from Theorem 4.3 / Fig. 3: every input index appears in
// exactly one group, every group sums to <= 1 (+rounding), and there are
// at most 2*ceil(total)-1 groups.
void check_invariants(const std::vector<double>& sizes) {
  const IntervalPartition part = unit_interval_partition(sizes);
  std::vector<int> seen(sizes.size(), 0);
  ASSERT_EQ(part.groups.size(), part.group_sums.size());
  for (std::size_t g = 0; g < part.groups.size(); ++g) {
    double sum = 0.0;
    for (std::size_t idx : part.groups[g]) {
      ASSERT_LT(idx, sizes.size());
      ++seen[idx];
      sum += sizes[idx];
    }
    EXPECT_NEAR(sum, part.group_sums[g], 1e-9);
    EXPECT_LE(sum, 1.0 + 1e-9) << "group " << g << " oversized";
  }
  for (std::size_t i = 0; i < sizes.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "index " << i << " not covered exactly once";
  const double total = std::accumulate(sizes.begin(), sizes.end(), 0.0);
  const auto bound =
      static_cast<std::size_t>(2 * std::max(1.0, std::ceil(total)) - 1);
  if (!sizes.empty()) {
    EXPECT_LE(part.groups.size(), bound)
        << "more than 2*ceil(total)-1 groups";
  }
}

TEST(IntervalPartition, Empty) {
  const IntervalPartition part = unit_interval_partition({});
  EXPECT_TRUE(part.groups.empty());
}

TEST(IntervalPartition, SingleSmallItemIsOneGroup) {
  const std::vector<double> sizes{0.4};
  const IntervalPartition part = unit_interval_partition(sizes);
  ASSERT_EQ(part.groups.size(), 1u);
  EXPECT_EQ(part.groups[0], (std::vector<std::size_t>{0}));
}

TEST(IntervalPartition, AllFitInUnitStaysTogether) {
  const std::vector<double> sizes{0.2, 0.3, 0.4};
  const IntervalPartition part = unit_interval_partition(sizes);
  ASSERT_EQ(part.groups.size(), 1u);
  EXPECT_EQ(part.groups[0].size(), 3u);
}

TEST(IntervalPartition, StraddlingItemBecomesSingleton) {
  // 0.6 + 0.6: the second item straddles the integer point 1.
  const std::vector<double> sizes{0.6, 0.6};
  const IntervalPartition part = unit_interval_partition(sizes);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(part.groups[1], (std::vector<std::size_t>{1}));
}

TEST(IntervalPartition, PaperLikeSequence) {
  // Three items of 0.6: white {0}, shaded {1}, white {2} (Fig. 3 pattern).
  check_invariants({0.6, 0.6, 0.6});
  // Many small items pack into few groups.
  check_invariants({0.3, 0.3, 0.3, 0.3});
}

TEST(IntervalPartition, ExactBoundaryItem) {
  // 0.5 + 0.5 ends exactly on the integer point; the point belongs to the
  // *next* item's interval (half-open), so {0,1} stay together.
  const std::vector<double> sizes{0.5, 0.5, 0.5};
  const IntervalPartition part = unit_interval_partition(sizes);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0].size(), 2u);
  EXPECT_EQ(part.groups[1].size(), 1u);
  check_invariants(sizes);
}

TEST(IntervalPartition, ZeroSizedItemsJoinTheOpenGroup) {
  check_invariants({0.0, 0.0, 0.5, 0.0});
  const IntervalPartition part =
      unit_interval_partition(std::vector<double>{0.0, 0.0});
  ASSERT_EQ(part.groups.size(), 1u);
  EXPECT_EQ(part.groups[0].size(), 2u);
}

TEST(IntervalPartition, RandomizedInvariantSweep) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 40));
    std::vector<double> sizes;
    for (int i = 0; i < n; ++i) sizes.push_back(rng.uniform(0.0, 0.999));
    check_invariants(sizes);
  }
}

TEST(BestGroup, PicksMaxValueGroup) {
  const std::vector<double> sizes{0.6, 0.6, 0.6};
  const IntervalPartition part = unit_interval_partition(sizes);
  const std::vector<double> values{1.0, 5.0, 2.0};
  EXPECT_EQ(best_group(part, values), 1u);
}

TEST(BestGroup, EmptyPartition) {
  const IntervalPartition part = unit_interval_partition({});
  EXPECT_EQ(best_group(part, {}), std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace vdist::util
