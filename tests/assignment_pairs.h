// Shared test helper: an Assignment's (user, stream) pair set in sorted
// order, the canonical form the equivalence suites compare (test_select,
// test_view, test_checkpoint).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "model/assignment.h"

namespace vdist::testing {

inline std::vector<std::pair<model::UserId, model::StreamId>> pairs(
    const model::Assignment& a) {
  std::vector<std::pair<model::UserId, model::StreamId>> out;
  for (std::size_t u = 0; u < a.instance().num_users(); ++u)
    for (model::StreamId s : a.streams_of(static_cast<model::UserId>(u)))
      out.emplace_back(static_cast<model::UserId>(u), s);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vdist::testing
