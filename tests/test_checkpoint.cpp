// GreedyEngine checkpointing (core/greedy.h) and the checkpointed §2.3
// enumeration (core/partial_enum.h): restoring a frame and continuing
// must equal a fresh solve, scoring-mode results must match the
// materializing path, and the whole checkpointed enumeration must equal
// a from-scratch reference that re-solves every seed set independently
// (the PR-3 formulation).
#include <gtest/gtest.h>

#include "assignment_pairs.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/greedy.h"
#include "core/partial_enum.h"
#include "engine/scenario.h"
#include "model/instance.h"
#include "model/view.h"
#include "util/float_cmp.h"

namespace vdist::core {
namespace {

using engine::ScenarioSpec;
using model::Assignment;
using model::Instance;
using model::InstanceView;
using model::StreamId;
using model::UserId;

using vdist::testing::pairs;

Instance cap_scenario(std::uint64_t seed, int streams, int users,
                      double budget_fraction = 0.3) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", streams)
      .set("users", users)
      .set("budget-fraction", budget_fraction);
  spec.seed = seed;
  return engine::build_scenario(spec);
}

// Restoring the pristine frame and re-running with different seeds must
// reproduce exactly what fresh from-scratch solves produce.
TEST(GreedyCheckpoint, RestoreThenSeedEqualsFreshSeededSolve) {
  const Instance inst = cap_scenario(7, 50, 15, 0.4);
  const InstanceView view = InstanceView::cap_form(inst);
  SolveWorkspace ws;
  GreedyEngine engine(view, ws, {SelectStrategy::kDeltaHeap, &ws});
  GreedyCheckpoint frame;
  engine.save(frame);

  // Exercise the engine, then rewind and run seeded completions.
  engine.run();
  for (const StreamId seed_stream : {StreamId{0}, StreamId{3}, StreamId{11}}) {
    engine.restore(frame);
    engine.add_seed(seed_stream);
    engine.run();
    const GreedyResult& through_checkpoint = engine.result();
    const StreamId seeds[] = {seed_stream};
    const GreedyResult fresh = greedy_unit_skew_seeded(inst, seeds);
    EXPECT_EQ(through_checkpoint.capped_utility, fresh.capped_utility)
        << "seed " << seed_stream;
    EXPECT_EQ(pairs(through_checkpoint.assignment), pairs(fresh.assignment))
        << "seed " << seed_stream;
  }

  // And rewinding to the pristine frame reproduces the plain greedy.
  engine.restore(frame);
  engine.run();
  const GreedyResult fresh_plain = greedy_unit_skew(inst);
  EXPECT_EQ(engine.result().capped_utility, fresh_plain.capped_utility);
  EXPECT_EQ(pairs(engine.result().assignment), pairs(fresh_plain.assignment));
}

// Mid-run frames work too: save after a forced seed, complete, rewind,
// complete differently.
TEST(GreedyCheckpoint, MidRunFrameSharesThePrefix) {
  const Instance inst = cap_scenario(9, 40, 12, 0.5);
  const InstanceView view = InstanceView::cap_form(inst);
  SolveWorkspace ws;
  GreedyEngine engine(view, ws, {SelectStrategy::kDeltaHeap, &ws});
  engine.add_seed(2);
  GreedyCheckpoint after_first;
  engine.save(after_first);

  engine.add_seed(5);
  engine.run();
  const StreamId seeds_25[] = {2, 5};
  const GreedyResult fresh_25 = greedy_unit_skew_seeded(inst, seeds_25);
  EXPECT_EQ(engine.result().capped_utility, fresh_25.capped_utility);
  EXPECT_EQ(pairs(engine.result().assignment), pairs(fresh_25.assignment));

  engine.restore(after_first);
  engine.add_seed(9);
  engine.run();
  const StreamId seeds_29[] = {2, 9};
  const GreedyResult fresh_29 = greedy_unit_skew_seeded(inst, seeds_29);
  EXPECT_EQ(engine.result().capped_utility, fresh_29.capped_utility);
  EXPECT_EQ(pairs(engine.result().assignment), pairs(fresh_29.assignment));
}

// Scoring mode (build_assignment = false): the accumulator-backed split
// values and the replay materializers must equal what the bookkeeping
// path computes.
TEST(GreedyCheckpoint, ScoringModeMatchesMaterializingMode) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = cap_scenario(seed, 45, 14, 0.35);
    const InstanceView view = InstanceView::cap_form(inst);
    SolveWorkspace ws;
    GreedyOptions scoring{SelectStrategy::kDeltaHeap, &ws,
                          /*record_trace=*/false,
                          /*build_assignment=*/false};
    GreedyEngine engine(view, ws, scoring);
    engine.run();

    const GreedyResult reference = greedy_unit_skew(inst);
    EXPECT_EQ(engine.capped_utility(), reference.capped_utility);
    EXPECT_EQ(pairs(engine.materialize_assignment()),
              pairs(reference.assignment));

    const SplitValues values = engine.split_values();
    const FeasibleSplit split = split_last_stream(inst, reference.assignment);
    // Same decisions; the accumulator arithmetic may differ by rounding.
    EXPECT_TRUE(util::approx_eq(values.w1, split.w1)) << seed;
    EXPECT_TRUE(util::approx_eq(values.w2, split.w2)) << seed;
    EXPECT_EQ(pairs(engine.materialize_split(/*keep_rest=*/true)),
              pairs(split.a1))
        << seed;
    EXPECT_EQ(pairs(engine.materialize_split(/*keep_rest=*/false)),
              pairs(split.a2))
        << seed;
  }
}

// --- The checkpointed enumeration vs a from-scratch reference ----------

// PR-3 semantics, reimplemented naively: every seed set of cardinality
// seed_size gets its own fresh seeded greedy; smaller sets are evaluated
// directly; the best candidate (after the Theorem 2.8 split) wins.
SmdSolveResult reference_partial_enum(const Instance& inst, int seed_size,
                                      SmdMode mode) {
  const InstanceView view = InstanceView::cap_form(inst);
  SmdSolveResult best{Assignment(inst), -1.0, "none", {}};
  auto consider = [&](Assignment&& a, double utility,
                      const std::string& variant) {
    if (utility > best.utility) best = {std::move(a), utility, variant, {}};
  };
  auto offer = [&](GreedyResult&& g) {
    if (mode == SmdMode::kAugmented) {
      consider(std::move(g.assignment), g.capped_utility, "greedy");
      return;
    }
    FeasibleSplit split = split_last_stream(inst, g.assignment);
    if (split.w1 >= split.w2)
      consider(std::move(split.a1), split.w1, "A1");
    else
      consider(std::move(split.a2), split.w2, "A2");
  };

  offer(greedy_unit_skew(inst));
  {
    Assignment amax = best_single_stream(inst);
    const double w = view_capped_utility(view, amax);
    consider(std::move(amax), w, "Amax");
  }

  const auto S = static_cast<StreamId>(inst.num_streams());
  const double B = inst.budget(0);
  std::vector<StreamId> current;
  auto enumerate = [&](auto&& self, StreamId start, double cost,
                       int target) -> void {
    if (static_cast<int>(current.size()) == target) {
      if (target < seed_size) {
        // Directly evaluated small set: the same saturation rule.
        Assignment a(inst);
        std::vector<double> rem(inst.num_users());
        for (std::size_t u = 0; u < rem.size(); ++u)
          rem[u] = inst.capacity(static_cast<UserId>(u), 0);
        double capped = 0.0;
        for (StreamId s : current) {
          for (model::EdgeId e = inst.first_edge(s); e < inst.last_edge(s);
               ++e) {
            const UserId u = inst.edge_user(e);
            const double w = inst.edge_utility(e);
            if (rem[static_cast<std::size_t>(u)] <= util::kAbsEps || w <= 0.0)
              continue;
            a.assign(u, s);
            capped += std::min(w, rem[static_cast<std::size_t>(u)]);
            rem[static_cast<std::size_t>(u)] -= w;
          }
        }
        GreedyResult g{std::move(a), capped, {}, {}};
        offer(std::move(g));
      } else {
        offer(greedy_unit_skew_seeded(inst, current));
      }
      return;
    }
    for (StreamId s = start; s < S; ++s) {
      const double c = inst.cost(s, 0);
      if (!util::approx_le(cost + c, B)) continue;
      current.push_back(s);
      self(self, s + 1, cost + c, target);
      current.pop_back();
    }
  };
  for (int k = 1; k <= seed_size; ++k) enumerate(enumerate, 0, 0.0, k);
  return best;
}

TEST(PartialEnumCheckpointed, MatchesFromScratchReference) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const int depth : {1, 2}) {
      for (const SmdMode mode : {SmdMode::kFeasible, SmdMode::kAugmented}) {
        const Instance inst = cap_scenario(seed, 16, 6, 0.5);
        PartialEnumOptions opts;
        opts.seed_size = depth;
        opts.mode = mode;
        const PartialEnumResult fast = partial_enum_unit_skew(inst, opts);
        const SmdSolveResult reference =
            reference_partial_enum(inst, depth, mode);
        EXPECT_TRUE(util::approx_eq(fast.best.utility, reference.utility))
            << "seed " << seed << " depth " << depth << " fast "
            << fast.best.utility << " ref " << reference.utility;
        EXPECT_EQ(fast.best.variant, reference.variant)
            << "seed " << seed << " depth " << depth;
        EXPECT_EQ(pairs(fast.best.assignment), pairs(reference.assignment))
            << "seed " << seed << " depth " << depth;
      }
    }
  }
}

// Depth 0 degenerates to best-of(plain greedy, Amax) exactly as before.
TEST(PartialEnumCheckpointed, DepthZeroDegeneratesToFixedGreedy) {
  const Instance inst = cap_scenario(4, 30, 10, 0.4);
  PartialEnumOptions opts;
  opts.seed_size = 0;
  const PartialEnumResult r = partial_enum_unit_skew(inst, opts);
  EXPECT_EQ(r.candidates_evaluated, 2u);
  const SmdSolveResult fixed = solve_unit_skew(inst);
  EXPECT_TRUE(util::approx_eq(r.best.utility, fixed.utility));
}

// The candidate safety valve still truncates the walk.
TEST(PartialEnumCheckpointed, MaxCandidatesTruncates) {
  const Instance inst = cap_scenario(2, 20, 8, 0.6);
  PartialEnumOptions opts;
  opts.seed_size = 2;
  opts.max_candidates = 5;
  const PartialEnumResult r = partial_enum_unit_skew(inst, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.candidates_evaluated, 2u + 5u + 1u);
}

// Workspace reuse across enumerations (the checkpoint arena persists in
// the workspace) must not change results.
TEST(PartialEnumCheckpointed, WorkspaceReuseAcrossSolvesIsInvariant) {
  SolveWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance inst = cap_scenario(seed, 25, 8, 0.4);
    PartialEnumOptions with_ws;
    with_ws.seed_size = 2;
    with_ws.workspace = &ws;
    PartialEnumOptions fresh = with_ws;
    fresh.workspace = nullptr;
    const PartialEnumResult a = partial_enum_unit_skew(inst, with_ws);
    const PartialEnumResult b = partial_enum_unit_skew(inst, fresh);
    EXPECT_EQ(a.best.utility, b.best.utility) << seed;
    EXPECT_EQ(a.best.variant, b.best.variant) << seed;
    EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated) << seed;
    EXPECT_EQ(pairs(a.best.assignment), pairs(b.best.assignment)) << seed;
  }
}

// All three selection strategies drive the checkpointed walk to the same
// answer.
TEST(PartialEnumCheckpointed, StrategiesAgree) {
  const Instance inst = cap_scenario(6, 30, 10, 0.35);
  PartialEnumOptions opts;
  opts.seed_size = 2;
  opts.strategy = SelectStrategy::kNaiveScan;
  const PartialEnumResult naive = partial_enum_unit_skew(inst, opts);
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap}) {
    opts.strategy = strategy;
    const PartialEnumResult fast = partial_enum_unit_skew(inst, opts);
    EXPECT_EQ(fast.best.utility, naive.best.utility) << to_string(strategy);
    EXPECT_EQ(fast.best.variant, naive.best.variant) << to_string(strategy);
    EXPECT_EQ(pairs(fast.best.assignment), pairs(naive.best.assignment))
        << to_string(strategy);
  }
}

}  // namespace
}  // namespace vdist::core
