// End-to-end integration: generated workloads flow through serialization,
// every solver, validation and the simulator together — the paths a real
// user strings together.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/policies.h"
#include "core/allocate_online.h"
#include "core/exact.h"
#include "core/group_select.h"
#include "core/mmd_solver.h"
#include "gen/iptv.h"
#include "gen/trace.h"
#include "io/instance_io.h"
#include "model/skew.h"
#include "model/validate.h"
#include "sim/engine.h"

namespace vdist {
namespace {

TEST(Integration, GenerateSerializeSolveValidate) {
  gen::IptvConfig cfg;
  cfg.num_channels = 60;
  cfg.num_users = 80;
  cfg.seed = 15;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);

  // Round-trip through the text format.
  std::stringstream ss;
  io::save_instance(ss, w.instance);
  const model::Instance inst = io::load_instance(ss);

  // Every solver on the loaded instance: feasible, utilities consistent.
  const core::MmdSolveResult pipeline = core::solve_mmd(inst);
  EXPECT_TRUE(model::validate(pipeline.assignment).feasible());
  EXPECT_GT(pipeline.utility, 0.0);

  const core::AllocateResult online = core::allocate_online(inst);
  EXPECT_TRUE(model::validate(online.assignment).feasible());

  const baseline::BaselineResult threshold = baseline::fcfs_admission(inst);
  EXPECT_TRUE(model::validate(threshold.assignment).feasible());

  // Utilities agree with the original instance (same ids after round-trip).
  model::Assignment replay(w.instance);
  for (std::size_t u = 0; u < inst.num_users(); ++u)
    for (model::StreamId s :
         pipeline.assignment.streams_of(static_cast<model::UserId>(u)))
      replay.assign(static_cast<model::UserId>(u), s);
  EXPECT_NEAR(replay.utility(), pipeline.utility, 1e-9);
}

TEST(Integration, SolverChainRespectsUtilityOrdering) {
  // On a small instance: exact >= pipeline >= max(bare pipeline, nothing),
  // and exact >= every other feasible algorithm.
  gen::IptvConfig cfg;
  cfg.num_channels = 16;
  cfg.num_users = 12;
  cfg.interests_per_user = 6;
  cfg.seed = 23;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const model::Instance& inst = w.instance;

  const core::ExactResult opt = core::solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const core::MmdSolveResult pipeline = core::solve_mmd(inst);
  core::MmdSolverOptions bare_opts;
  bare_opts.augment = false;
  const core::MmdSolveResult bare = core::solve_mmd(inst, bare_opts);
  const baseline::BaselineResult threshold = baseline::fcfs_admission(inst);
  const core::AllocateResult online = core::allocate_online(inst);

  EXPECT_GE(opt.utility + 1e-9, pipeline.utility);
  EXPECT_GE(opt.utility + 1e-9, threshold.utility);
  EXPECT_GE(opt.utility + 1e-9, online.utility);
  EXPECT_GE(pipeline.utility + 1e-9, bare.utility);
}

TEST(Integration, VariantWorkflowEndToEnd) {
  gen::IptvConfig cfg;
  cfg.num_channels = 60;
  cfg.num_users = 60;
  cfg.variants_per_channel = 3;
  cfg.seed = 31;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const core::GroupSelectResult r =
      core::solve_with_groups(w.instance, w.variant_group);
  EXPECT_TRUE(core::satisfies_group_constraint(r.assignment, w.variant_group));
  EXPECT_TRUE(model::validate(r.assignment).feasible());
  // The constrained utility cannot beat the unconstrained pipeline.
  const core::MmdSolveResult unconstrained = core::solve_mmd(w.instance);
  EXPECT_LE(r.utility, unconstrained.utility + 1e-6);
}

TEST(Integration, SimulatorAgreesWithStaticSolveOnStaticTrace) {
  // A trace where every catalog stream arrives once and never departs
  // (duration beyond horizon) makes the threshold policy equivalent to
  // the static threshold_admission in arrival order.
  gen::IptvConfig cfg;
  cfg.num_channels = 40;
  cfg.num_users = 40;
  cfg.seed = 41;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);

  std::vector<gen::Session> trace;
  for (std::size_t s = 0; s < w.instance.num_streams(); ++s)
    trace.push_back(gen::Session{static_cast<double>(s) + 1.0, 1e9,
                                 static_cast<model::StreamId>(s)});

  sim::ThresholdPolicy policy(w.instance);
  const sim::SimResult sim_result =
      run_simulation(w.instance, trace, policy);
  const baseline::BaselineResult static_result =
      baseline::fcfs_admission(w.instance);
  EXPECT_EQ(sim_result.totals.accepted, static_result.admitted);
  EXPECT_EQ(sim_result.totals.violations, 0u);
}

TEST(Integration, OnlineAllocateConsistencyBetweenDriverAndPolicy) {
  // The offline driver (allocate_online) and the simulator policy fed the
  // same one-shot arrivals must make identical decisions.
  gen::IptvConfig cfg;
  cfg.num_channels = 30;
  cfg.num_users = 25;
  cfg.seed = 53;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const double mu = model::global_skew(w.instance).mu;

  core::AllocateOptions opts;
  opts.mu = mu;
  const core::AllocateResult driver = core::allocate_online(w.instance, opts);

  std::vector<gen::Session> trace;
  for (std::size_t s = 0; s < w.instance.num_streams(); ++s)
    trace.push_back(gen::Session{static_cast<double>(s) + 1.0, 1e9,
                                 static_cast<model::StreamId>(s)});
  sim::OnlineAllocatePolicy policy(w.instance, mu, true);
  const sim::SimResult sim_result =
      run_simulation(w.instance, trace, policy);

  EXPECT_EQ(sim_result.totals.accepted, driver.accepted);
  EXPECT_EQ(sim_result.totals.rejected, driver.rejected);
}

}  // namespace
}  // namespace vdist
