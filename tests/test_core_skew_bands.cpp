#include "core/skew_bands.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::core {
namespace {

using model::build_smd_instance;
using model::Instance;

TEST(SkewBands, RequiresSmd) {
  model::InstanceBuilder b(2, 1);
  b.set_budget(0, 1.0);
  b.set_budget(1, 1.0);
  const Instance mmd = std::move(b).build();
  EXPECT_THROW(solve_smd_any_skew(mmd), std::invalid_argument);
}

TEST(SkewBands, UnitSkewUsesSingleBandAndMatchesSection2) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = 15;
  cfg.num_users = 6;
  cfg.seed = 77;
  const Instance inst = gen::random_cap_instance(cfg);
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_EQ(bands.num_bands, 1);
  EXPECT_DOUBLE_EQ(bands.alpha, 1.0);
  const SmdSolveResult direct = solve_unit_skew(inst);
  EXPECT_NEAR(bands.utility, direct.utility, 1e-9);
}

TEST(SkewBands, BandCountFollowsAlpha) {
  // alpha = 8 => t = 1 + floor(log2 8) = 4.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 10.0, {100.0},
      {{0, 0, 8.0, 1.0}, {0, 1, 1.0, 1.0}});
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_DOUBLE_EQ(bands.alpha, 8.0);
  EXPECT_EQ(bands.num_bands, 4);
}

TEST(SkewBands, BandMajorFillTouchesEachEdgeTwiceTotal) {
  // The PR-4 fill rescanned the whole CSR once per band: O(t * nnz)
  // surrogate writes. The band-major partition writes each live edge
  // exactly twice (fill + clear) regardless of the band count.
  gen::RandomSmdConfig cfg;
  cfg.num_streams = 40;
  cfg.num_users = 12;
  cfg.target_skew = 64.0;  // many bands, so the old bound would be ~7x nnz
  cfg.seed = 9;
  const Instance inst = gen::random_smd_instance(cfg);
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  ASSERT_GE(bands.num_bands, 4);
  std::size_t live_edges = 0;
  for (const BandReport& band : bands.bands) live_edges += band.num_edges;
  EXPECT_EQ(bands.fill_edges, 2 * live_edges);
  EXPECT_LE(bands.fill_edges, 2 * inst.num_edges());
}

TEST(SkewBands, EdgesArePartitionedAcrossBands) {
  gen::RandomSmdConfig cfg;
  cfg.num_streams = 20;
  cfg.num_users = 8;
  cfg.target_skew = 32.0;
  cfg.seed = 5;
  const Instance inst = gen::random_smd_instance(cfg);
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  std::size_t total_edges = 0;
  for (const BandReport& band : bands.bands) total_edges += band.num_edges;
  EXPECT_EQ(total_edges, inst.num_edges())
      << "every pair must appear in exactly one band (Thm 3.1 proof)";
}

TEST(SkewBands, OutputFeasibleOnOriginalInstance) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    gen::RandomSmdConfig cfg;
    cfg.num_streams = 18;
    cfg.num_users = 7;
    cfg.target_skew = 16.0;
    cfg.capacity_fraction = 0.35;
    cfg.budget_fraction = 0.3;
    cfg.seed = seed;
    const Instance inst = gen::random_smd_instance(cfg);
    const SkewBandsResult bands = solve_smd_any_skew(inst);
    EXPECT_TRUE(model::validate(bands.assignment).feasible())
        << "seed " << seed;
    EXPECT_NEAR(bands.utility, bands.assignment.utility(), 1e-9);
  }
}

TEST(SkewBands, FreeEdgesGetTheirOwnBand) {
  // All load-free pairs: the free band carries everything; capacity never
  // binds, so the whole catalog within budget is assignable.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 2.0, {0.5},
      {{0, 0, 5.0, 0.0}, {0, 1, 3.0, 0.0}});
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_EQ(bands.chosen_band, 0) << "free band";
  EXPECT_DOUBLE_EQ(bands.utility, 8.0);
  EXPECT_TRUE(model::validate(bands.assignment).feasible());
}

TEST(SkewBands, MixedFreeAndLoadedEdges) {
  // One free pair (utility 10) and one loaded pair (utility 2, load 2,
  // cap 1 => the loaded edge is dropped by the builder's w=0 rule? No:
  // load 2 > cap 1 drops it; use load 1 <= cap). The best band should be
  // the free one.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 10.0, {1.0},
      {{0, 0, 10.0, 0.0}, {0, 1, 2.0, 1.0}});
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_DOUBLE_EQ(bands.utility, 10.0);
  EXPECT_EQ(bands.chosen_band, 0);
}

TEST(SkewBands, ChoosesBestBandByOriginalUtility) {
  // Band 1 (ratio ~1): many small-utility pairs; band 2 (ratio ~4): one
  // large pair. Force the big pair to win.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 1.0,  // budget admits one stream only
      {10.0, 10.0},
      {{0, 0, 1.0, 1.0},    // ratio 1
       {1, 1, 8.0, 2.0}});  // ratio 4
  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_DOUBLE_EQ(bands.utility, 8.0);
  EXPECT_TRUE(bands.assignment.has(1, 1));
}

TEST(SkewBands, PartialEnumOptionImprovesOrMatches) {
  gen::RandomSmdConfig cfg;
  cfg.num_streams = 10;
  cfg.num_users = 5;
  cfg.target_skew = 8.0;
  cfg.seed = 11;
  const Instance inst = gen::random_smd_instance(cfg);
  const SkewBandsResult plain = solve_smd_any_skew(inst);
  SkewBandsOptions opts;
  opts.use_partial_enum = true;
  opts.seed_size = 2;
  const SkewBandsResult better = solve_smd_any_skew(inst, opts);
  EXPECT_GE(better.utility + 1e-9, plain.utility);
}

}  // namespace
}  // namespace vdist::core
