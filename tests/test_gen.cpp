#include <gtest/gtest.h>

#include <algorithm>

#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "gen/small_streams.h"
#include "gen/tightness.h"
#include "gen/trace.h"
#include "model/skew.h"
#include "model/validate.h"

namespace vdist::gen {
namespace {

TEST(RandomInstances, DeterministicPerSeed) {
  RandomCapConfig cfg;
  cfg.seed = 42;
  const model::Instance a = random_cap_instance(cfg);
  const model::Instance b = random_cap_instance(cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_streams(), b.num_streams());
  for (std::size_t s = 0; s < a.num_streams(); ++s)
    EXPECT_DOUBLE_EQ(a.cost(static_cast<model::StreamId>(s), 0),
                     b.cost(static_cast<model::StreamId>(s), 0));
  cfg.seed = 43;
  const model::Instance c = random_cap_instance(cfg);
  bool any_diff = c.num_edges() != a.num_edges();
  for (std::size_t s = 0; !any_diff && s < a.num_streams(); ++s)
    any_diff = a.cost(static_cast<model::StreamId>(s), 0) !=
               c.cost(static_cast<model::StreamId>(s), 0);
  EXPECT_TRUE(any_diff);
}

TEST(RandomInstances, CapInstanceIsWellFormed) {
  RandomCapConfig cfg;
  cfg.num_streams = 50;
  cfg.num_users = 20;
  cfg.seed = 7;
  const model::Instance inst = random_cap_instance(cfg);
  EXPECT_TRUE(inst.is_smd());
  EXPECT_TRUE(inst.is_unit_skew());
  EXPECT_EQ(inst.num_streams(), 50u);
  EXPECT_EQ(inst.num_users(), 20u);
  EXPECT_GT(inst.num_edges(), 0u);
  // No stream exceeds the budget; the builder would have thrown otherwise.
  for (std::size_t s = 0; s < inst.num_streams(); ++s)
    EXPECT_LE(inst.cost(static_cast<model::StreamId>(s), 0),
              inst.budget(0) * (1 + 1e-12));
}

TEST(RandomInstances, EveryStreamHasAtLeastOneInterestedUser) {
  RandomCapConfig cfg;
  cfg.num_streams = 60;
  cfg.num_users = 15;
  cfg.interest_per_stream = 0.1;  // sparse: forces the fallback path
  cfg.seed = 11;
  const model::Instance inst = random_cap_instance(cfg);
  for (std::size_t s = 0; s < inst.num_streams(); ++s)
    EXPECT_GE(inst.users_of(static_cast<model::StreamId>(s)).size(), 1u);
}

TEST(RandomInstances, SmdSkewIsBounded) {
  RandomSmdConfig cfg;
  cfg.num_streams = 40;
  cfg.num_users = 12;
  cfg.target_skew = 16.0;
  cfg.seed = 13;
  const model::Instance inst = random_smd_instance(cfg);
  const double alpha = model::local_skew(inst).alpha;
  EXPECT_GE(alpha, 1.0);
  // Capacity clamping can shrink loads (raising a ratio) by at most the
  // clamp factor; in practice alpha stays near the target.
  EXPECT_LE(alpha, cfg.target_skew * 4);
}

TEST(RandomInstances, UnitTargetSkewGivesCapForm) {
  RandomSmdConfig cfg;
  cfg.target_skew = 1.0;
  cfg.seed = 17;
  const model::Instance inst = random_smd_instance(cfg);
  EXPECT_NEAR(model::local_skew(inst).alpha, 1.0, 1e-9);
}

TEST(RandomInstances, MmdDimensionsHonored) {
  RandomMmdConfig cfg;
  cfg.num_server_measures = 4;
  cfg.num_user_measures = 3;
  cfg.seed = 19;
  const model::Instance inst = random_mmd_instance(cfg);
  EXPECT_EQ(inst.num_server_measures(), 4);
  EXPECT_EQ(inst.num_user_measures(), 3);
  EXPECT_FALSE(inst.is_smd());
}

TEST(Tightness, ValidatesArguments) {
  EXPECT_THROW(tightness_instance({0, 1, -1, -1}), std::invalid_argument);
  EXPECT_THROW(tightness_instance({1, 0, -1, -1}), std::invalid_argument);
}

TEST(Tightness, EdgeCaseMEqualsOne) {
  const TightnessConfig cfg{1, 3, -1.0, -1.0};
  const model::Instance inst = tightness_instance(cfg);
  EXPECT_EQ(inst.num_streams(), 3u);  // m + mc - 1 = 3
  EXPECT_NEAR(tightness_opt(cfg), 1.0, 1e-12);
  model::Assignment all(inst);
  for (std::size_t s = 0; s < inst.num_streams(); ++s)
    all.assign(0, static_cast<model::StreamId>(s));
  EXPECT_TRUE(model::validate(all).feasible());
}

TEST(SmallStreams, PremiseHoldsByConstruction) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SmallStreamsConfig cfg;
    cfg.num_streams = 100;
    cfg.num_users = 12;
    cfg.seed = seed;
    const SmallStreamsInstance gen_result = small_streams_instance(cfg);
    EXPECT_TRUE(model::satisfies_small_streams(gen_result.instance,
                                               gen_result.skew))
        << "seed " << seed;
    EXPECT_GT(gen_result.skew.mu, 2.0);
  }
}

TEST(SmallStreams, TightnessLoosensBudgets) {
  SmallStreamsConfig tight;
  tight.seed = 5;
  tight.tightness = 1.0;
  SmallStreamsConfig loose = tight;
  loose.tightness = 3.0;
  const auto a = small_streams_instance(tight);
  const auto b = small_streams_instance(loose);
  EXPECT_LT(a.instance.budget(0), b.instance.budget(0));
}

TEST(Iptv, CatalogShape) {
  IptvConfig cfg;
  cfg.num_channels = 100;
  cfg.num_users = 80;
  cfg.seed = 3;
  const IptvWorkload w = make_iptv_workload(cfg);
  EXPECT_EQ(w.instance.num_streams(), 100u);
  EXPECT_EQ(w.instance.num_users(), 80u);
  EXPECT_EQ(w.instance.num_server_measures(), 3);
  EXPECT_EQ(w.instance.num_user_measures(), 2);
  EXPECT_EQ(w.channels.size(), 100u);
  EXPECT_EQ(w.user_tiers.size(), 80u);
  // Every channel class appears in a 100-channel catalog w.h.p.
  bool sd = false, hd = false, uhd = false;
  for (const auto& ch : w.channels) {
    sd |= ch.klass == ChannelClass::kSd;
    hd |= ch.klass == ChannelClass::kHd;
    uhd |= ch.klass == ChannelClass::kUhd;
  }
  EXPECT_TRUE(sd);
  EXPECT_TRUE(hd);
  EXPECT_TRUE(uhd);
}

TEST(Iptv, BronzeUsersCannotTakeUhd) {
  // UHD bitrates (15-24 Mbps) exceed the bronze incoming cap (18 Mbps)
  // for most draws; the builder zeroes those edges per the paper's rule.
  IptvConfig cfg;
  cfg.num_channels = 150;
  cfg.num_users = 100;
  cfg.sd_fraction = 0.0;
  cfg.hd_fraction = 0.0;  // all UHD
  cfg.seed = 21;
  const IptvWorkload w = make_iptv_workload(cfg);
  EXPECT_GT(w.instance.num_edges_zeroed_by_capacity(), 0u);
  for (std::size_t s = 0; s < w.instance.num_streams(); ++s) {
    const auto sid = static_cast<model::StreamId>(s);
    for (model::EdgeId e = w.instance.first_edge(sid);
         e < w.instance.last_edge(sid); ++e) {
      const model::UserId u = w.instance.edge_user(e);
      EXPECT_LE(w.instance.edge_load(e, 0), w.instance.capacity(u, 0));
    }
  }
}

TEST(Iptv, ZipfMakesPopularChannelsMoreSubscribed) {
  IptvConfig cfg;
  cfg.num_channels = 120;
  cfg.num_users = 200;
  cfg.zipf_exponent = 1.1;
  cfg.seed = 9;
  const IptvWorkload w = make_iptv_workload(cfg);
  // Average degree of the top-decile ranks must exceed the bottom decile.
  double top = 0, bottom = 0;
  for (std::size_t s = 0; s < 12; ++s)
    top += static_cast<double>(
        w.instance.users_of(static_cast<model::StreamId>(s)).size());
  for (std::size_t s = 108; s < 120; ++s)
    bottom += static_cast<double>(
        w.instance.users_of(static_cast<model::StreamId>(s)).size());
  EXPECT_GT(top, bottom * 1.5);
}

TEST(Trace, SortedAndWithinHorizon) {
  IptvConfig cfg;
  cfg.num_channels = 30;
  cfg.num_users = 20;
  const IptvWorkload w = make_iptv_workload(cfg);
  TraceConfig tc;
  tc.arrival_rate = 2.0;
  tc.horizon = 100.0;
  tc.seed = 31;
  const auto trace = make_trace(w.instance, tc);
  EXPECT_GT(trace.size(), 100u);  // ~200 expected
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                             [](const Session& a, const Session& b) {
                               return a.arrival < b.arrival;
                             }));
  for (const Session& s : trace) {
    EXPECT_GE(s.arrival, 0.0);
    EXPECT_LT(s.arrival, tc.horizon);
    EXPECT_GT(s.duration, 0.0);
    EXPECT_GE(s.stream, 0);
    EXPECT_LT(static_cast<std::size_t>(s.stream), w.instance.num_streams());
  }
}

TEST(Trace, PopularityBiasSkewsSampling) {
  IptvConfig cfg;
  cfg.num_channels = 40;
  cfg.num_users = 60;
  const IptvWorkload w = make_iptv_workload(cfg);
  TraceConfig biased;
  biased.arrival_rate = 20.0;
  biased.horizon = 200.0;
  biased.popularity_bias = 2.0;
  biased.seed = 37;
  const auto trace = make_trace(w.instance, biased);
  // The most-utility stream should be offered more often than the least.
  model::StreamId best = 0, worst = 0;
  for (std::size_t s = 1; s < w.instance.num_streams(); ++s) {
    const auto sid = static_cast<model::StreamId>(s);
    if (w.instance.total_utility(sid) > w.instance.total_utility(best))
      best = sid;
    if (w.instance.total_utility(sid) < w.instance.total_utility(worst))
      worst = sid;
  }
  std::size_t best_count = 0, worst_count = 0;
  for (const Session& s : trace) {
    if (s.stream == best) ++best_count;
    if (s.stream == worst) ++worst_count;
  }
  EXPECT_GT(best_count, worst_count);
}

}  // namespace
}  // namespace vdist::gen
