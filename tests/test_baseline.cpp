#include "baseline/policies.h"

#include <gtest/gtest.h>

#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::baseline {
namespace {

using model::build_cap_instance;
using model::Instance;

TEST(Threshold, AlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    gen::RandomMmdConfig cfg;
    cfg.num_streams = 30;
    cfg.num_users = 10;
    cfg.num_server_measures = 2;
    cfg.num_user_measures = 2;
    cfg.budget_fraction = 0.3;
    cfg.capacity_fraction = 0.4;
    cfg.seed = seed;
    const Instance inst = gen::random_mmd_instance(cfg);
    for (const StreamOrder order :
         {StreamOrder::kArrival, StreamOrder::kUtilityDesc,
          StreamOrder::kDensityDesc, StreamOrder::kRandom}) {
      ThresholdOptions opts;
      opts.order = order;
      opts.seed = seed;
      const BaselineResult r = threshold_admission(inst, opts);
      EXPECT_TRUE(model::validate(r.assignment).feasible())
          << "seed " << seed;
      EXPECT_EQ(r.admitted + r.rejected, inst.num_streams());
    }
  }
}

TEST(Threshold, MarginLeavesHeadroom) {
  // With margin 0.5 the server must never use more than half the budget.
  gen::RandomCapConfig cfg;
  cfg.num_streams = 40;
  cfg.num_users = 8;
  cfg.budget_fraction = 0.5;
  cfg.seed = 4;
  const Instance inst = gen::random_cap_instance(cfg);
  ThresholdOptions opts;
  opts.server_margin = 0.5;
  const BaselineResult r = threshold_admission(inst, opts);
  EXPECT_LE(r.assignment.server_cost(0), 0.5 * inst.budget(0) * (1 + 1e-9));
}

TEST(Threshold, AdmitsGreedilyInOrder) {
  // Arrival order: s0 (cost 6) fills the budget; s1 (cost 5, huge utility)
  // is rejected — exactly the naivety the paper criticizes.
  const Instance inst = build_cap_instance(
      {6.0, 5.0}, 8.0, {1000.0},
      {{0, 0, 1.0}, {0, 1, 100.0}});
  const BaselineResult fcfs = fcfs_admission(inst);
  EXPECT_DOUBLE_EQ(fcfs.utility, 1.0);
  EXPECT_EQ(fcfs.admitted, 1u);
  EXPECT_EQ(fcfs.rejected, 1u);
  // Utility-sorted order fixes this particular instance.
  ThresholdOptions opts;
  opts.order = StreamOrder::kUtilityDesc;
  const BaselineResult sorted = threshold_admission(inst, opts);
  EXPECT_DOUBLE_EQ(sorted.utility, 100.0);
}

TEST(Threshold, UsersSkipStreamsOverTheirCaps) {
  // User cap 3: can take the w=2 stream but not both (2+2 > 3); the
  // second admitted stream is carried for nobody and counts as rejected.
  const Instance inst = build_cap_instance(
      {1.0, 1.0}, 10.0, {3.0}, {{0, 0, 2.0}, {0, 1, 2.0}});
  const BaselineResult r = fcfs_admission(inst);
  EXPECT_DOUBLE_EQ(r.utility, 2.0);
  EXPECT_EQ(r.admitted, 1u);
  EXPECT_EQ(r.rejected, 1u) << "no taker => not carried";
  EXPECT_TRUE(model::validate(r.assignment).feasible());
}

TEST(Threshold, StreamWithNoTakersNotCharged) {
  // A stream nobody wants must not consume budget.
  const Instance inst = build_cap_instance(
      {6.0, 5.0}, 8.0, {10.0},
      {{0, 1, 4.0}});  // only s1 is wanted
  const BaselineResult r = fcfs_admission(inst);
  EXPECT_EQ(r.admitted, 1u);
  EXPECT_DOUBLE_EQ(r.assignment.server_cost(0), 5.0);
  EXPECT_DOUBLE_EQ(r.utility, 4.0);
}

TEST(Threshold, RandomOrderIsSeedDeterministic) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = 25;
  cfg.num_users = 8;
  cfg.seed = 9;
  const Instance inst = gen::random_cap_instance(cfg);
  const BaselineResult a = random_admission(inst, 123);
  const BaselineResult b = random_admission(inst, 123);
  const BaselineResult c = random_admission(inst, 456);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
  // Different seeds usually give different outcomes on tight budgets
  // (not guaranteed, so only check determinism above; this is a smoke
  // check that the seed is actually used).
  (void)c;
}

TEST(Threshold, DensityOrderBeatsArrivalOnAdversarialInstance) {
  // Low-density expensive stream first in arrival order.
  const Instance inst = build_cap_instance(
      {8.0, 1.0, 1.0}, 9.0, {1000.0},
      {{0, 0, 2.0}, {0, 1, 5.0}, {0, 2, 5.0}});
  const BaselineResult arrival = fcfs_admission(inst);
  ThresholdOptions opts;
  opts.order = StreamOrder::kDensityDesc;
  const BaselineResult density = threshold_admission(inst, opts);
  EXPECT_GT(density.utility, arrival.utility);
}

}  // namespace
}  // namespace vdist::baseline
