// engine::run_competitive — the online-vs-offline differential of ISSUE 10:
//   * the resolve policy's ratio against the default (mode-matched greedy)
//     offline reference is 1.0 BIT-EXACTLY at every checkpoint, on every
//     workload family;
//   * the repair policy stays within its declared drift bound at every
//     aligned checkpoint;
//   * sharded resolve (shards 4) reproduces the single-shard checkpoint
//     vector bit-identically on flash-crowd traces;
//   * aggregates, emitters, and the exact-reference sanity bound hold.
#include "engine/competitive.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gen/random_instances.h"
#include "model/events.h"
#include "model/instance.h"
#include "workload/workload.h"

namespace vdist::engine {
namespace {

using model::Instance;
using model::InstanceEvent;

Instance base_instance(std::uint64_t seed, std::size_t streams = 28,
                       std::size_t users = 11) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = streams;
  cfg.num_users = users;
  cfg.seed = seed;
  return gen::random_cap_instance(cfg);
}

std::vector<InstanceEvent> family_trace(const std::string& family,
                                        const Instance& inst,
                                        std::size_t events,
                                        std::uint64_t seed) {
  return workload::WorkloadRegistry::global().generate(
      family, inst,
      {{"events", std::to_string(events)}, {"seed", std::to_string(seed)}});
}

// The harness's own differential anchor: resolve maintains exactly the
// from-scratch greedy of the overlay view, and the workload generators'
// parity-safety contract makes the materialized snapshot bit-compatible
// with that view — so online/offline == 1.0 exactly, not approximately.
TEST(Competitive, ResolveRatioIsExactlyOneOnEveryFamily) {
  const Instance inst = base_instance(6);
  for (const std::string family :
       {"churn", "zipf-drift", "flash-crowd", "diurnal", "hetero-cap"}) {
    const auto trace = family_trace(family, inst, 80, 19);
    CompetitiveOptions opts;
    opts.serve.policy = ServePolicy::kResolve;
    opts.every = 10;
    const CompetitiveReport report = run_competitive(inst, trace, opts);
    EXPECT_EQ(report.offline_algorithm, "greedy");
    ASSERT_EQ(report.checkpoints.size(), 8u) << family;
    for (const CompetitiveCheckpoint& cp : report.checkpoints) {
      EXPECT_EQ(cp.online_objective, cp.offline_objective)
          << family << " event " << cp.event;
      EXPECT_EQ(cp.ratio, 1.0) << family << " event " << cp.event;
    }
    EXPECT_EQ(report.min_ratio, 1.0) << family;
    EXPECT_EQ(report.mean_ratio, 1.0) << family;
    EXPECT_EQ(report.final_ratio, 1.0) << family;
  }
}

// align_refresh lines the repair backend's self-correction up with the
// measurement prefixes, so every measured ratio is covered by the
// declared drift bound.
TEST(Competitive, RepairStaysWithinDeclaredBoundAtEveryCheckpoint) {
  const Instance inst = base_instance(9);
  for (const std::string family : {"flash-crowd", "hetero-cap"}) {
    const auto trace = family_trace(family, inst, 120, 5);
    CompetitiveOptions opts;
    opts.serve.policy = ServePolicy::kRepair;
    opts.serve.bound = 0.05;
    opts.every = 15;
    const CompetitiveReport report = run_competitive(inst, trace, opts);
    for (const CompetitiveCheckpoint& cp : report.checkpoints)
      EXPECT_GE(cp.ratio, 1.0 - opts.serve.bound - 1e-9)
          << family << " event " << cp.event;
    EXPECT_GE(report.min_ratio, 1.0 - opts.serve.bound - 1e-9) << family;
  }
}

// The sharded engine behind the same harness: resolve checkpoints are
// bit-identical for every shard count (the ServingBackend parity
// contract, measured through ratios here).
TEST(Competitive, ShardedResolveReproducesSingleShardCheckpoints) {
  const Instance inst = base_instance(12, 36, 14);
  const auto trace = family_trace("flash-crowd", inst, 100, 23);
  std::vector<CompetitiveReport> reports;
  for (const int shards : {1, 4}) {
    CompetitiveOptions opts;
    opts.serve.policy = ServePolicy::kResolve;
    opts.serve.shards = shards;
    opts.every = 20;
    reports.push_back(run_competitive(inst, trace, opts));
  }
  ASSERT_EQ(reports[0].checkpoints.size(), reports[1].checkpoints.size());
  for (std::size_t i = 0; i < reports[0].checkpoints.size(); ++i) {
    EXPECT_EQ(reports[0].checkpoints[i].online_objective,
              reports[1].checkpoints[i].online_objective)
        << i;
    EXPECT_EQ(reports[0].checkpoints[i].offline_objective,
              reports[1].checkpoints[i].offline_objective)
        << i;
    EXPECT_EQ(reports[1].checkpoints[i].ratio, 1.0) << i;
  }
  EXPECT_EQ(reports[1].shards, 4);
}

// Against the exact reference the greedy-maintained resolve policy can
// only be <= 1; the ratio stays positive and the gap field matches the
// upper-bound arithmetic.
TEST(Competitive, ExactOfflineReferenceBoundsTheGreedyPolicies) {
  const Instance inst = base_instance(4, 12, 5);
  const auto trace = family_trace("zipf-drift", inst, 30, 7);
  CompetitiveOptions opts;
  opts.serve.policy = ServePolicy::kResolve;
  opts.offline = "exact";
  opts.every = 10;
  const CompetitiveReport report = run_competitive(inst, trace, opts);
  EXPECT_EQ(report.offline_algorithm, "exact");
  for (const CompetitiveCheckpoint& cp : report.checkpoints) {
    EXPECT_LE(cp.ratio, 1.0 + 1e-12) << cp.event;
    EXPECT_GT(cp.ratio, 0.0) << cp.event;
    EXPECT_GE(cp.upper_bound, cp.offline_objective - 1e-9) << cp.event;
    if (cp.upper_bound > 0.0)
      EXPECT_EQ(cp.offline_gap,
                (cp.upper_bound - cp.offline_objective) / cp.upper_bound)
          << cp.event;
  }
  EXPECT_THROW(
      {
        CompetitiveOptions bad = opts;
        bad.offline = "exactt";
        (void)run_competitive(inst, trace, bad);
      },
      std::invalid_argument);
}

TEST(Competitive, EveryZeroMeasuresOnlyTheTraceEnd) {
  const Instance inst = base_instance(2, 15, 6);
  const auto trace = family_trace("diurnal", inst, 40, 3);
  CompetitiveOptions opts;
  opts.serve.policy = ServePolicy::kResolve;
  opts.every = 0;
  const CompetitiveReport report = run_competitive(inst, trace, opts);
  ASSERT_EQ(report.checkpoints.size(), 1u);
  EXPECT_EQ(report.checkpoints.back().event, trace.size());
  EXPECT_EQ(report.min_ratio, report.final_ratio);
  EXPECT_EQ(report.mean_ratio, report.final_ratio);

  // An empty trace is the opening solve, where every policy meets the
  // offline value.
  const CompetitiveReport empty = run_competitive(inst, {}, opts);
  ASSERT_EQ(empty.checkpoints.size(), 1u);
  EXPECT_EQ(empty.checkpoints.back().event, 0u);
  EXPECT_EQ(empty.final_ratio, 1.0);
}

TEST(Competitive, OnlinePolicyRatiosAreFiniteAndAggregated) {
  const Instance inst = base_instance(8);
  const auto trace = family_trace("flash-crowd", inst, 80, 11);
  CompetitiveOptions opts;
  opts.serve.policy = ServePolicy::kOnline;
  opts.every = 20;
  const CompetitiveReport report = run_competitive(inst, trace, opts);
  double min = report.checkpoints.front().ratio, sum = 0.0;
  for (const CompetitiveCheckpoint& cp : report.checkpoints) {
    EXPECT_GT(cp.ratio, 0.0);
    EXPECT_LT(cp.ratio, 10.0);  // sane, not degenerate
    min = std::min(min, cp.ratio);
    sum += cp.ratio;
  }
  EXPECT_EQ(report.min_ratio, min);
  EXPECT_EQ(report.mean_ratio,
            sum / static_cast<double>(report.checkpoints.size()));
  EXPECT_EQ(report.final_ratio, report.checkpoints.back().ratio);
  EXPECT_EQ(report.policy, std::string("online"));
}

TEST(Competitive, EmittersCarryTheCheckpointRows) {
  const Instance inst = base_instance(5, 15, 6);
  const auto trace = family_trace("churn", inst, 30, 2);
  CompetitiveOptions opts;
  opts.serve.policy = ServePolicy::kResolve;
  opts.every = 10;
  const CompetitiveReport report = run_competitive(inst, trace, opts);

  const util::Table table = competitive_table(report);
  EXPECT_EQ(table.num_rows(), report.checkpoints.size());
  EXPECT_EQ(table.column_names().front(), "event");

  std::ostringstream csv;
  write_competitive_csv(csv, report);
  EXPECT_NE(csv.str().find("event,online,offline,ratio"), std::string::npos);

  std::ostringstream json;
  write_competitive_json(json, report);
  const std::string doc = json.str();
  for (const char* key :
       {"\"compete\":", "\"offline\":", "\"min_ratio\":", "\"mean_ratio\":",
        "\"final_ratio\":", "\"checkpoints\":["})
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  // Round-trip precision: the ratio 1 prints as an exact literal.
  EXPECT_NE(doc.find("\"ratio\":1"), std::string::npos);
}

}  // namespace
}  // namespace vdist::engine
