#include "model/skew.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/factory.h"

namespace vdist::model {
namespace {

TEST(LocalSkew, UnitSkewInstanceHasAlphaOne) {
  const Instance inst = build_cap_instance(
      {1.0, 2.0}, 10.0, {5.0, 5.0}, {{0, 0, 2.0}, {1, 1, 3.0}});
  const LocalSkewInfo info = local_skew(inst);
  EXPECT_DOUBLE_EQ(info.alpha, 1.0);
  EXPECT_FALSE(info.has_free_edges);
}

TEST(LocalSkew, RatioSpreadWithinOneUser) {
  // User 0 sees ratios 4 and 1 => alpha = 4.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 10.0, {10.0},
      {{0, 0, 4.0, 1.0}, {0, 1, 2.0, 2.0}});
  const LocalSkewInfo info = local_skew(inst);
  EXPECT_DOUBLE_EQ(info.alpha, 4.0);
  // Normalization scale is the user's min ratio (=1 here).
  EXPECT_DOUBLE_EQ(info.scale[0], 1.0);
}

TEST(LocalSkew, PerUserNormalizationIsIndependent) {
  // User 0: ratios {10}; user 1: ratios {2, 6}. After per-user
  // normalization alpha = max(1, 3) = 3.
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 10.0, {100.0, 100.0},
      {{0, 0, 10.0, 1.0}, {1, 0, 2.0, 1.0}, {1, 1, 6.0, 1.0}});
  const LocalSkewInfo info = local_skew(inst);
  EXPECT_DOUBLE_EQ(info.alpha, 3.0);
  EXPECT_DOUBLE_EQ(info.scale[0], 10.0);
  EXPECT_DOUBLE_EQ(info.scale[1], 2.0);
}

TEST(LocalSkew, FreeEdgesFlaggedAndExcluded) {
  const Instance inst = build_smd_instance(
      {1.0, 1.0}, 10.0, {10.0},
      {{0, 0, 4.0, 0.0},   // free edge: w > 0, k = 0
       {0, 1, 2.0, 1.0}});
  const LocalSkewInfo info = local_skew(inst);
  EXPECT_TRUE(info.has_free_edges);
  EXPECT_DOUBLE_EQ(info.alpha, 1.0) << "single finite ratio => alpha 1";
}

TEST(LocalSkew, MultiMeasureTakesWorst) {
  InstanceBuilder b(1, 2);
  b.set_budget(0, 10.0);
  const StreamId s0 = b.add_stream({1.0});
  const StreamId s1 = b.add_stream({1.0});
  const UserId u = b.add_user({100.0, 100.0});
  // Measure 0 ratios: 1 and 1 (no spread); measure 1 ratios: 1 and 8.
  b.add_interest(u, s0, 2.0, {2.0, 2.0});
  b.add_interest(u, s1, 8.0, {8.0, 1.0});
  const Instance inst = std::move(b).build();
  const LocalSkewInfo info = local_skew(inst);
  EXPECT_DOUBLE_EQ(info.alpha, 8.0);
}

TEST(GlobalSkew, UniformInstanceHasGammaOne) {
  // One stream, one user, one measure: max ratio == min ratio.
  const Instance inst =
      build_cap_instance({2.0}, 10.0, {5.0}, {{0, 0, 4.0}});
  const GlobalSkewInfo gs = global_skew(inst);
  EXPECT_DOUBLE_EQ(gs.gamma, 1.0);
  // mu = 2*gamma*(m + |U|*mc) + 2 = 2*1*(1+1) + 2 = 6.
  EXPECT_DOUBLE_EQ(gs.mu, 6.0);
  EXPECT_NEAR(gs.log2_mu, std::log2(6.0), 1e-12);
}

TEST(GlobalSkew, SubsetRangeDrivesGamma) {
  // Stream 0: utilities {1, 9} for cost 1 => X ranges the numerator over
  // [1, 10]; gamma >= 10.
  const Instance inst = build_cap_instance(
      {1.0}, 10.0, {100.0, 100.0}, {{0, 0, 1.0}, {1, 0, 9.0}});
  const GlobalSkewInfo gs = global_skew(inst);
  EXPECT_DOUBLE_EQ(gs.gamma, 10.0);
}

TEST(GlobalSkew, AcrossStreamsSpread) {
  // Stream 0: w/c = 8; stream 1: w/c = 2 => gamma = 4 on the server
  // measure (user virtual budgets contribute ratio spreads of 1 each).
  const Instance inst = build_cap_instance(
      {1.0, 1.0}, 10.0, {100.0},
      {{0, 0, 8.0}, {0, 1, 2.0}});
  const GlobalSkewInfo gs = global_skew(inst);
  EXPECT_DOUBLE_EQ(gs.gamma, 4.0);
}

TEST(GlobalSkew, GammaAtLeastLocalAlpha) {
  // Paper (§1.1): gamma >= alpha for all instances. Spot-check.
  const Instance inst = build_smd_instance(
      {1.0, 2.0}, 10.0, {50.0},
      {{0, 0, 6.0, 1.0}, {0, 1, 3.0, 3.0}});
  EXPECT_GE(global_skew(inst).gamma, local_skew(inst).alpha - 1e-9);
}

TEST(SmallStreams, PredicateMatchesConstruction) {
  // Costs far below B/log2(mu): satisfied.
  const Instance ok = build_cap_instance(
      {0.1, 0.1}, 100.0, {100.0}, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_TRUE(satisfies_small_streams(ok, global_skew(ok)));
  // A cost equal to the whole budget: violated (log2 mu > 1 here).
  const Instance bad = build_cap_instance(
      {100.0, 0.1}, 100.0, {100.0}, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_FALSE(satisfies_small_streams(bad, global_skew(bad)));
}

TEST(SmallStreams, UnboundedMeasuresIgnored) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, kUnbounded);
  const StreamId s = b.add_stream({1e12});
  const UserId u = b.add_user({kUnbounded});
  b.add_interest(u, s, 1.0, {1e12});
  const Instance inst = std::move(b).build();
  EXPECT_TRUE(satisfies_small_streams(inst, global_skew(inst)));
}

}  // namespace
}  // namespace vdist::model
