#include "model/assignment.h"

#include <gtest/gtest.h>

#include "model/factory.h"
#include "model/validate.h"

namespace vdist::model {
namespace {

// Two streams, two users; edges: (u0,s0,2), (u0,s1,3), (u1,s0,4).
Instance small_instance() {
  return build_cap_instance({1.0, 2.0}, 10.0, {4.0, 4.0},
                            {{0, 0, 2.0}, {0, 1, 3.0}, {1, 0, 4.0}});
}

TEST(Assignment, StartsEmpty) {
  const Instance inst = small_instance();
  Assignment a(inst);
  EXPECT_EQ(a.utility(), 0.0);
  EXPECT_EQ(a.num_assigned_pairs(), 0u);
  EXPECT_EQ(a.range_size(), 0u);
  EXPECT_EQ(a.server_cost(0), 0.0);
}

TEST(Assignment, AssignTracksEverything) {
  const Instance inst = small_instance();
  Assignment a(inst);
  EXPECT_TRUE(a.assign(0, 0));
  EXPECT_FALSE(a.assign(0, 0)) << "double assignment must be a no-op";
  EXPECT_TRUE(a.assign(1, 0));
  EXPECT_TRUE(a.assign(0, 1));

  EXPECT_DOUBLE_EQ(a.utility(), 2.0 + 4.0 + 3.0);
  EXPECT_DOUBLE_EQ(a.user_utility(0), 5.0);
  EXPECT_DOUBLE_EQ(a.user_utility(1), 4.0);
  // Server pays once per range stream (multicast).
  EXPECT_DOUBLE_EQ(a.server_cost(0), 1.0 + 2.0);
  EXPECT_EQ(a.range_size(), 2u);
  EXPECT_TRUE(a.in_range(0));
  EXPECT_TRUE(a.in_range(1));
  EXPECT_EQ(a.num_assigned_pairs(), 3u);
  // Loads track utilities in the cap form.
  EXPECT_DOUBLE_EQ(a.user_load(0, 0), 5.0);
}

TEST(Assignment, MulticastCostSharing) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 0);
  const double cost_one = a.server_cost(0);
  a.assign(1, 0);  // second user on the same stream: no extra server cost
  EXPECT_DOUBLE_EQ(a.server_cost(0), cost_one);
}

TEST(Assignment, UnassignRestoresState) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(1, 0);
  EXPECT_TRUE(a.unassign(0, 0));
  EXPECT_FALSE(a.unassign(0, 0));
  EXPECT_DOUBLE_EQ(a.utility(), 4.0);
  EXPECT_TRUE(a.in_range(0)) << "still held by user 1";
  EXPECT_TRUE(a.unassign(1, 0));
  EXPECT_FALSE(a.in_range(0));
  EXPECT_DOUBLE_EQ(a.server_cost(0), 0.0);
  EXPECT_EQ(a.num_assigned_pairs(), 0u);
}

TEST(Assignment, NonEdgePairContributesNothing) {
  const Instance inst = small_instance();
  Assignment a(inst);
  EXPECT_TRUE(a.assign(1, 1));  // (u1, s1) is not an interest edge
  EXPECT_DOUBLE_EQ(a.utility(), 0.0);
  EXPECT_DOUBLE_EQ(a.server_cost(0), 2.0) << "server still pays for it";
}

TEST(Assignment, CappedUtilityClampsPerUser) {
  const Instance inst = small_instance();  // caps are 4.0
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);  // raw 5 > cap 4
  EXPECT_DOUBLE_EQ(a.utility(), 5.0);
  EXPECT_DOUBLE_EQ(a.capped_utility(), 4.0);
}

TEST(Assignment, RangeListsAssignedStreams) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 1);
  const auto range = a.range();
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0], 1);
}

TEST(Assignment, RestrictedToSubset) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);
  a.assign(1, 0);
  const StreamId keep[] = {1};
  const Assignment r = a.restricted_to(keep);
  EXPECT_DOUBLE_EQ(r.utility(), 3.0);
  EXPECT_FALSE(r.has(0, 0));
  EXPECT_TRUE(r.has(0, 1));
  EXPECT_FALSE(r.has(1, 0));
}

TEST(Assignment, StreamsOfPreservesInsertionOrder) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 1);
  a.assign(0, 0);
  const auto streams = a.streams_of(0);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], 1);
  EXPECT_EQ(streams[1], 0);
}

TEST(Assignment, ClearResets) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(1, 0);
  a.clear();
  EXPECT_EQ(a.utility(), 0.0);
  EXPECT_EQ(a.num_assigned_pairs(), 0u);
  EXPECT_EQ(a.range_size(), 0u);
  EXPECT_DOUBLE_EQ(a.server_cost(0), 0.0);
  EXPECT_FALSE(a.has(0, 0));
}

TEST(Assignment, IncrementalAccountingMatchesValidateRecomputation) {
  const Instance inst = small_instance();
  Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);
  a.assign(1, 0);
  a.unassign(0, 0);
  const ValidationReport rep = validate(a);
  EXPECT_NEAR(rep.recomputed_utility, a.utility(), 1e-12);
  EXPECT_NEAR(rep.recomputed_server_cost[0], a.server_cost(0), 1e-12);
}

}  // namespace
}  // namespace vdist::model
