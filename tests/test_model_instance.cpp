#include "model/instance.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "model/factory.h"

namespace vdist::model {
namespace {

InstanceBuilder basic_builder() {
  InstanceBuilder b(2, 1);
  b.set_budget(0, 10.0);
  b.set_budget(1, 5.0);
  return b;
}

TEST(InstanceBuilder, RejectsBadDimensions) {
  EXPECT_THROW(InstanceBuilder(0, 1), std::invalid_argument);
  EXPECT_THROW(InstanceBuilder(1, -1), std::invalid_argument);
}

TEST(InstanceBuilder, RejectsBadBudgets) {
  InstanceBuilder b(1, 1);
  EXPECT_THROW(b.set_budget(1, 1.0), std::invalid_argument);
  EXPECT_THROW(b.set_budget(0, 0.0), std::invalid_argument);
  EXPECT_THROW(b.set_budget(0, -2.0), std::invalid_argument);
  b.set_budget(0, kUnbounded);  // infinite budget is legal
}

TEST(InstanceBuilder, RejectsWrongCostArity) {
  auto b = basic_builder();
  EXPECT_THROW(b.add_stream({1.0}), std::invalid_argument);
  EXPECT_THROW(b.add_stream({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(InstanceBuilder, RejectsNegativeOrNonFiniteCosts) {
  auto b = basic_builder();
  EXPECT_THROW(b.add_stream({-1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(b.add_stream({kUnbounded, 0.0}), std::invalid_argument);
}

TEST(InstanceBuilder, RejectsStreamExceedingBudget) {
  auto b = basic_builder();
  b.add_stream({1.0, 6.0});  // 6 > B_1 = 5: violates c_i(S) <= B_i
  b.add_user({3.0});
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(InstanceBuilder, RejectsUnknownIdsAndDuplicates) {
  auto b = basic_builder();
  const StreamId s = b.add_stream({1.0, 1.0});
  const UserId u = b.add_user({3.0});
  EXPECT_THROW(b.add_interest(u + 1, s, 1.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(b.add_interest(u, s + 1, 1.0, {1.0}), std::invalid_argument);
  b.add_interest(u, s, 1.0, {1.0});
  b.add_interest(u, s, 2.0, {1.0});  // duplicate detected at build
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(InstanceBuilder, ZeroesEdgesOverCapacity) {
  // Paper: w_u(S) = 0 whenever some k_j^u(S) > K_j^u.
  auto b = basic_builder();
  const StreamId s = b.add_stream({1.0, 1.0});
  const UserId u = b.add_user({3.0});
  b.add_interest(u, s, 5.0, {4.0});  // load 4 > cap 3
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.num_edges(), 0u);
  EXPECT_EQ(inst.num_edges_zeroed_by_capacity(), 1u);
  EXPECT_EQ(inst.utility(u, s), 0.0);
}

TEST(InstanceBuilder, DropsZeroUtilityEdges) {
  auto b = basic_builder();
  const StreamId s = b.add_stream({1.0, 1.0});
  const UserId u = b.add_user({3.0});
  b.add_interest(u, s, 0.0, {1.0});
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.num_edges(), 0u);
  EXPECT_EQ(inst.num_edges_zeroed_by_capacity(), 0u);
}

TEST(Instance, CsrBothDirectionsConsistent) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, 100.0);
  const StreamId s0 = b.add_stream({1.0});
  const StreamId s1 = b.add_stream({2.0});
  const UserId u0 = b.add_user({10.0});
  const UserId u1 = b.add_user({10.0});
  const UserId u2 = b.add_user({10.0});
  b.add_interest(u1, s0, 3.0, {3.0});
  b.add_interest(u0, s0, 1.0, {1.0});
  b.add_interest(u2, s1, 2.0, {2.0});
  b.add_interest(u0, s1, 4.0, {4.0});
  const Instance inst = std::move(b).build();

  ASSERT_EQ(inst.num_edges(), 4u);
  // Stream CSR is sorted by user.
  const auto users0 = inst.users_of(s0);
  ASSERT_EQ(users0.size(), 2u);
  EXPECT_EQ(users0[0], u0);
  EXPECT_EQ(users0[1], u1);
  EXPECT_EQ(inst.utilities_of(s0)[0], 1.0);
  EXPECT_EQ(inst.utilities_of(s0)[1], 3.0);
  // User CSR is sorted by stream and mirrors the same edges.
  const auto streams0 = inst.streams_of(u0);
  ASSERT_EQ(streams0.size(), 2u);
  EXPECT_EQ(streams0[0], s0);
  EXPECT_EQ(streams0[1], s1);
  const auto edges0 = inst.edges_of(u0);
  EXPECT_EQ(inst.edge_utility(edges0[0]), 1.0);
  EXPECT_EQ(inst.edge_utility(edges0[1]), 4.0);
  // Point lookups.
  EXPECT_EQ(inst.utility(u2, s1), 2.0);
  EXPECT_EQ(inst.utility(u2, s0), 0.0);
  EXPECT_TRUE(inst.find_edge(u1, s0).has_value());
  EXPECT_FALSE(inst.find_edge(u1, s1).has_value());
}

TEST(Instance, TotalsAndInputLength) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  const StreamId s = b.add_stream({1.0});
  const UserId u0 = b.add_user({9.0});
  const UserId u1 = b.add_user({9.0});
  b.add_interest(u0, s, 2.0, {2.0});
  b.add_interest(u1, s, 3.5, {3.5});
  const Instance inst = std::move(b).build();
  EXPECT_DOUBLE_EQ(inst.total_utility(s), 5.5);
  EXPECT_DOUBLE_EQ(inst.utility_upper_bound(), 5.5);
  EXPECT_EQ(inst.input_length(), 1u + 2u + 2u);
}

TEST(Instance, UnitSkewDetection) {
  {
    InstanceBuilder b(1, 1);
    b.set_budget(0, 10.0);
    const StreamId s = b.add_stream({1.0});
    const UserId u = b.add_user({5.0});
    b.add_interest_unit_skew(u, s, 2.0);
    const Instance inst = std::move(b).build();
    EXPECT_TRUE(inst.is_smd());
    EXPECT_TRUE(inst.is_unit_skew());
  }
  {
    InstanceBuilder b(1, 1);
    b.set_budget(0, 10.0);
    const StreamId s = b.add_stream({1.0});
    const UserId u = b.add_user({5.0});
    b.add_interest(u, s, 2.0, {1.0});  // load != utility
    const Instance inst = std::move(b).build();
    EXPECT_TRUE(inst.is_smd());
    EXPECT_FALSE(inst.is_unit_skew());
  }
  {
    InstanceBuilder b(2, 1);
    b.set_budget(0, 10.0);
    b.set_budget(1, 10.0);
    b.add_stream({1.0, 1.0});
    b.add_user({5.0});
    const Instance inst = std::move(b).build();
    EXPECT_FALSE(inst.is_smd());
  }
}

TEST(Instance, NamesArePreserved) {
  InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  const StreamId s = b.add_stream({1.0}, "espn-hd");
  const UserId u = b.add_user({5.0}, "gateway-3");
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.stream_name(s), "espn-hd");
  EXPECT_EQ(inst.user_name(u), "gateway-3");
}

TEST(Factory, CapInstanceIsUnitSkew) {
  const Instance inst = build_cap_instance(
      {2.0, 3.0}, 4.0, {5.0, 6.0},
      {{0, 0, 1.5}, {1, 0, 2.0}, {0, 1, 3.0}});
  EXPECT_TRUE(inst.is_unit_skew());
  EXPECT_EQ(inst.num_streams(), 2u);
  EXPECT_EQ(inst.num_users(), 2u);
  EXPECT_EQ(inst.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(inst.budget(0), 4.0);
  EXPECT_DOUBLE_EQ(inst.capacity(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(inst.edge_load(*inst.find_edge(0, 0), 0), 1.5);
}

TEST(Factory, SmdInstanceKeepsIndependentLoads) {
  const Instance inst = build_smd_instance(
      {2.0}, 4.0, {5.0}, {{0, 0, /*utility=*/6.0, /*load=*/1.0}});
  EXPECT_FALSE(inst.is_unit_skew());
  EXPECT_DOUBLE_EQ(inst.edge_utility(*inst.find_edge(0, 0)), 6.0);
  EXPECT_DOUBLE_EQ(inst.edge_load(*inst.find_edge(0, 0), 0), 1.0);
}

TEST(Factory, MmcZeroUserMeasuresAllowed) {
  InstanceBuilder b(1, 0);
  b.set_budget(0, 5.0);
  const StreamId s = b.add_stream({1.0});
  const UserId u = b.add_user({});
  b.add_interest(u, s, 1.0, {});
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.num_user_measures(), 0);
  EXPECT_EQ(inst.num_edges(), 1u);
}

}  // namespace
}  // namespace vdist::model
