#include "io/instance_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "engine/scenario.h"
#include "util/json.h"
#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "model/factory.h"

namespace vdist::io {
namespace {

void expect_instances_equal(const model::Instance& a,
                            const model::Instance& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_server_measures(), b.num_server_measures());
  ASSERT_EQ(a.num_user_measures(), b.num_user_measures());
  for (int i = 0; i < a.num_server_measures(); ++i)
    EXPECT_EQ(a.budget(i), b.budget(i));
  for (std::size_t s = 0; s < a.num_streams(); ++s) {
    const auto sid = static_cast<model::StreamId>(s);
    EXPECT_EQ(a.stream_name(sid), b.stream_name(sid));
    for (int i = 0; i < a.num_server_measures(); ++i)
      EXPECT_EQ(a.cost(sid, i), b.cost(sid, i)) << "stream " << s;
    const auto ua = a.users_of(sid);
    const auto ub = b.users_of(sid);
    ASSERT_EQ(ua.size(), ub.size());
    for (std::size_t t = 0; t < ua.size(); ++t) {
      EXPECT_EQ(ua[t], ub[t]);
      EXPECT_EQ(a.utilities_of(sid)[t], b.utilities_of(sid)[t]);
    }
  }
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    const auto uid = static_cast<model::UserId>(u);
    EXPECT_EQ(a.user_name(uid), b.user_name(uid));
    for (int j = 0; j < a.num_user_measures(); ++j)
      EXPECT_EQ(a.capacity(uid, j), b.capacity(uid, j));
  }
}

TEST(InstanceIo, RoundTripTinyInstance) {
  const model::Instance inst = model::build_cap_instance(
      {1.5, 2.25}, 3.0, {4.0, model::kUnbounded},
      {{0, 0, 1.0}, {1, 1, 2.0}});
  std::stringstream ss;
  save_instance(ss, inst);
  const model::Instance loaded = load_instance(ss);
  expect_instances_equal(inst, loaded);
}

TEST(InstanceIo, RoundTripExactDoubles) {
  // Values with no short decimal representation must survive.
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 1.0 / 3.0 * 10);
  const auto s = b.add_stream({0.1 + 0.2});
  const auto u = b.add_user({1e-7});
  b.add_interest(u, s, 1e-7, {1e-7});
  const model::Instance inst = std::move(b).build();
  std::stringstream ss;
  save_instance(ss, inst);
  const model::Instance loaded = load_instance(ss);
  EXPECT_EQ(loaded.budget(0), inst.budget(0));
  EXPECT_EQ(loaded.cost(0, 0), inst.cost(0, 0));
  EXPECT_EQ(loaded.edge_utility(0), inst.edge_utility(0));
}

TEST(InstanceIo, RoundTripRandomMmd) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    gen::RandomMmdConfig cfg;
    cfg.num_streams = 20;
    cfg.num_users = 8;
    cfg.num_server_measures = 3;
    cfg.num_user_measures = 2;
    cfg.seed = seed;
    const model::Instance inst = gen::random_mmd_instance(cfg);
    std::stringstream ss;
    save_instance(ss, inst);
    const model::Instance loaded = load_instance(ss);
    expect_instances_equal(inst, loaded);
  }
}

TEST(InstanceIo, RoundTripIptvWithNames) {
  gen::IptvConfig cfg;
  cfg.num_channels = 25;
  cfg.num_users = 20;
  cfg.seed = 3;
  const model::Instance inst = gen::make_iptv_workload(cfg).instance;
  std::stringstream ss;
  save_instance(ss, inst);
  const model::Instance loaded = load_instance(ss);
  expect_instances_equal(inst, loaded);
  EXPECT_FALSE(loaded.stream_name(0).empty());
}

// Registry-driven round-trip: every registered scenario family (current
// and future — new registrations are covered automatically) must survive
// save/load bit-exactly, including named streams/users (iptv, trace).
TEST(InstanceIo, RoundTripEveryRegisteredScenario) {
  const engine::ScenarioRegistry& registry =
      engine::ScenarioRegistry::global();
  for (const std::string& name : registry.names()) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      engine::ScenarioSpec spec;
      spec.name = name;
      spec.seed = seed;
      const engine::ScenarioInfo& info = registry.info(name);
      if (info.declares("streams")) spec.params.set("streams", 15);
      if (info.declares("users")) spec.params.set("users", 7);
      if (info.declares("horizon")) spec.params.set("horizon", 80);
      const model::Instance inst = registry.build(spec);
      std::stringstream ss;
      save_instance(ss, inst);
      const model::Instance loaded = load_instance(ss);
      expect_instances_equal(inst, loaded);
    }
  }
}

// Scenario instances rebuilt with unbounded budgets/caps (the kUnbounded
// sentinel serializes as "inf") must round-trip too.
TEST(InstanceIo, RoundTripScenarioWithUnboundedMeasures) {
  engine::ScenarioSpec spec;
  spec.name = "mmd";
  spec.params.set("streams", 10).set("users", 5);
  const model::Instance base = engine::build_scenario(spec);
  model::InstanceBuilder b(base.num_server_measures(),
                           base.num_user_measures());
  for (int i = 0; i < base.num_server_measures(); ++i)
    b.set_budget(i, i == 0 ? model::kUnbounded : base.budget(i));
  for (std::size_t s = 0; s < base.num_streams(); ++s) {
    std::vector<double> costs;
    for (int i = 0; i < base.num_server_measures(); ++i)
      costs.push_back(base.cost(static_cast<model::StreamId>(s), i));
    b.add_stream(std::move(costs));
  }
  for (std::size_t u = 0; u < base.num_users(); ++u)
    b.add_user(std::vector<double>(
        static_cast<std::size_t>(base.num_user_measures()),
        model::kUnbounded));
  for (std::size_t s = 0; s < base.num_streams(); ++s) {
    const auto sid = static_cast<model::StreamId>(s);
    for (model::EdgeId e = base.first_edge(sid); e < base.last_edge(sid); ++e) {
      std::vector<double> loads;
      for (int j = 0; j < base.num_user_measures(); ++j)
        loads.push_back(base.edge_load(e, j));
      b.add_interest(base.edge_user(e), sid, base.edge_utility(e),
                     std::move(loads));
    }
  }
  const model::Instance inst = std::move(b).build();
  std::stringstream ss;
  save_instance(ss, inst);
  EXPECT_NE(ss.str().find("inf"), std::string::npos);
  const model::Instance loaded = load_instance(ss);
  expect_instances_equal(inst, loaded);
  EXPECT_TRUE(std::isinf(loaded.budget(0)));
  EXPECT_TRUE(std::isinf(loaded.capacity(0, 0)));
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "vdist-instance 1\n"
      "dims 1 1\n"
      "# budgets\n"
      "budget 0 5\n"
      "stream 0 - 1\n"
      "user 0 - 2\n"
      "\n"
      "interest 0 0 1.5 1.5\n";
  std::istringstream is(text);
  const model::Instance inst = load_instance(is);
  EXPECT_EQ(inst.num_streams(), 1u);
  EXPECT_EQ(inst.num_edges(), 1u);
  EXPECT_EQ(inst.utility(0, 0), 1.5);
}

TEST(InstanceIo, RejectsMalformedInput) {
  auto load = [](const std::string& text) {
    std::istringstream is(text);
    return load_instance(is);
  };
  EXPECT_THROW(load(""), std::runtime_error);
  EXPECT_THROW(load("not-a-header 1\n"), std::runtime_error);
  EXPECT_THROW(load("vdist-instance 99\ndims 1 1\n"), std::runtime_error);
  EXPECT_THROW(load("vdist-instance 1\nbudget 0 5\n"), std::runtime_error)
      << "dims must come first";
  EXPECT_THROW(load("vdist-instance 1\ndims 1 1\nstream 5 - 1\n"),
               std::runtime_error)
      << "non-dense stream ids";
  EXPECT_THROW(load("vdist-instance 1\ndims 1 1\nstream 0 - abc\n"),
               std::runtime_error)
      << "bad number";
  EXPECT_THROW(load("vdist-instance 1\ndims 1 1\nfrobnicate 1 2\n"),
               std::runtime_error)
      << "unknown record";
  EXPECT_THROW(load("vdist-instance 1\ndims 1 1\nstream 0 - 1 2\n"),
               std::runtime_error)
      << "wrong arity";
}

TEST(InstanceIo, UnboundedValuesSerializeAsInf) {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, model::kUnbounded);
  b.add_stream({5.0});
  b.add_user({model::kUnbounded});
  const model::Instance inst = std::move(b).build();
  std::stringstream ss;
  save_instance(ss, inst);
  EXPECT_NE(ss.str().find("budget 0 inf"), std::string::npos);
  const model::Instance loaded = load_instance(ss);
  EXPECT_TRUE(std::isinf(loaded.budget(0)));
}

TEST(InstanceIo, FileRoundTripAndErrors) {
  const model::Instance inst = model::build_cap_instance(
      {1.0}, 2.0, {3.0}, {{0, 0, 1.0}});
  const std::string path = "/tmp/vdist_io_test_instance.txt";
  save_instance_file(path, inst);
  const model::Instance loaded = load_instance_file(path);
  expect_instances_equal(inst, loaded);
  EXPECT_THROW(load_instance_file("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

TEST(AssignmentIo, ExportsPairsAndUtility) {
  const model::Instance inst = model::build_cap_instance(
      {1.0, 1.0}, 5.0, {10.0}, {{0, 0, 2.0}, {0, 1, 3.0}});
  model::Assignment a(inst);
  a.assign(0, 0);
  a.assign(0, 1);
  std::stringstream ss;
  save_assignment(ss, a);
  const std::string out = ss.str();
  EXPECT_NE(out.find("assign 0 0"), std::string::npos);
  EXPECT_NE(out.find("assign 0 1"), std::string::npos);
  EXPECT_NE(out.find("utility 5"), std::string::npos);
}


TEST(AssignmentIo, RoundTripThroughLoadAssignment) {
  gen::RandomMmdConfig cfg;
  cfg.num_streams = 15;
  cfg.num_users = 6;
  cfg.num_server_measures = 2;
  cfg.num_user_measures = 2;
  cfg.seed = 12;
  const model::Instance inst = gen::random_mmd_instance(cfg);
  model::Assignment a(inst);
  a.assign(0, 1);
  a.assign(2, 1);
  a.assign(3, 4);
  std::stringstream ss;
  save_assignment(ss, a);
  const model::Assignment loaded = load_assignment(ss, inst);
  EXPECT_NEAR(loaded.utility(), a.utility(), 1e-12);
  EXPECT_EQ(loaded.num_assigned_pairs(), a.num_assigned_pairs());
  EXPECT_TRUE(loaded.has(0, 1));
  EXPECT_TRUE(loaded.has(2, 1));
  EXPECT_TRUE(loaded.has(3, 4));
}

TEST(AssignmentIo, LoadRejectsBadPairsAndMismatchedUtility) {
  const model::Instance inst = model::build_cap_instance(
      {1.0}, 5.0, {10.0}, {{0, 0, 2.0}});
  {
    std::istringstream is("assign 0 7\n");
    EXPECT_THROW((void)load_assignment(is, inst), std::runtime_error);
  }
  {
    std::istringstream is("assign 9 0\n");
    EXPECT_THROW((void)load_assignment(is, inst), std::runtime_error);
  }
  {
    std::istringstream is("assign 0 0\nutility 99\n");
    EXPECT_THROW((void)load_assignment(is, inst), std::runtime_error)
        << "claimed utility disagrees with the instance";
  }
  {
    std::istringstream is("assign 0 0\nutility 2\n");
    const model::Assignment ok = load_assignment(is, inst);
    EXPECT_DOUBLE_EQ(ok.utility(), 2.0);
  }
  {
    std::istringstream is("bogus 1 2\n");
    EXPECT_THROW((void)load_assignment(is, inst), std::runtime_error);
  }
}

TEST(JsonNumber, IntegralDoublesPrintAsIntegers) {
  // Perf counters travel as doubles; large counts must not flip to
  // scientific notation (9968784 used to print as "9.96878e+06").
  EXPECT_EQ(util::json_number_string(0.0), "0");
  EXPECT_EQ(util::json_number_string(-0.0), "-0");  // sign bit round-trips
  EXPECT_EQ(util::json_number_string(415316.0), "415316");
  EXPECT_EQ(util::json_number_string(9968784.0), "9968784");
  EXPECT_EQ(util::json_number_string(-123456789.0), "-123456789");
  EXPECT_EQ(util::json_number_string(9007199254740992.0),
            "9007199254740992");  // 2^53: the last exact integer
  // Beyond 2^53 adjacent integers collide; fall back to round-trip %g.
  const std::string big = util::json_number_string(1.8446744073709552e19);
  EXPECT_EQ(std::strtod(big.c_str(), nullptr), 1.8446744073709552e19);
}

TEST(JsonNumber, NonIntegralValuesKeepShortestRoundTrip) {
  EXPECT_EQ(util::json_number_string(0.5), "0.5");
  EXPECT_EQ(util::json_number_string(64.65), "64.65");
  const std::string pi = util::json_number_string(3.141592653589793);
  EXPECT_EQ(std::strtod(pi.c_str(), nullptr), 3.141592653589793);
}

}  // namespace
}  // namespace vdist::io
