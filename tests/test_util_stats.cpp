#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vdist::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), mean * static_cast<double>(xs.size()), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, Basics) {
  std::vector<double> xs{4, 1, 3, 2, 5};
  EXPECT_EQ(percentile(xs, 0), 1.0);
  EXPECT_EQ(percentile(xs, 100), 5.0);
  EXPECT_EQ(percentile(xs, 50), 3.0);
  EXPECT_NEAR(percentile(xs, 25), 2.0, 1e-12);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(percentile(xs, 50), 5.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 75), 7.5, 1e-12);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(FitLogLogSlope, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i * 100.0);
    y.push_back(3.0 * std::pow(i * 100.0, 2.0));
  }
  EXPECT_NEAR(fit_loglog_slope(x, y), 2.0, 1e-9);
}

TEST(FitLogLogSlope, LinearIsSlopeOne) {
  std::vector<double> x{1, 2, 4, 8, 16}, y{3, 6, 12, 24, 48};
  EXPECT_NEAR(fit_loglog_slope(x, y), 1.0, 1e-9);
}

TEST(FitLogLogSlope, IgnoresNonPositive) {
  std::vector<double> x{0.0, 1, 2, 4}, y{5.0, 1, 2, 4};
  EXPECT_NEAR(fit_loglog_slope(x, y), 1.0, 1e-9);
}

TEST(GeometricMean, Basics) {
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(GeometricMean, SkipsNonPositive) {
  EXPECT_NEAR(geometric_mean({2.0, 0.0, 8.0, -1.0}), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({0.0, -2.0}), 0.0);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

}  // namespace
}  // namespace vdist::util
