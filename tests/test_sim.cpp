#include "sim/engine.h"

#include <gtest/gtest.h>

#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "model/skew.h"

namespace vdist::sim {
namespace {

gen::IptvWorkload small_workload(std::uint64_t seed = 1) {
  gen::IptvConfig cfg;
  cfg.num_channels = 40;
  cfg.num_users = 30;
  cfg.bandwidth_fraction = 0.3;
  cfg.seed = seed;
  return gen::make_iptv_workload(cfg);
}

std::vector<gen::Session> small_trace(const model::Instance& inst,
                                      std::uint64_t seed = 2) {
  gen::TraceConfig tc;
  tc.arrival_rate = 1.5;
  tc.mean_duration = 15.0;
  tc.horizon = 200.0;
  tc.seed = seed;
  return gen::make_trace(inst, tc);
}

// The simulator as a thin client of the serving session: arrivals and
// departures become StreamAdd/StreamRemove events and decisions come
// from the session's maintained assignment.
TEST(Engine, SessionPolicyDrivesTheSimulator) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = 25;
  cfg.num_users = 12;
  cfg.seed = 4;
  const model::Instance catalog = gen::random_cap_instance(cfg);
  const auto trace = small_trace(catalog, 8);
  for (const engine::ServePolicy policy :
       {engine::ServePolicy::kRepair, engine::ServePolicy::kResolve}) {
    engine::ServeConfig scfg;
    scfg.policy = policy;
    SessionPolicy session_policy(catalog, scfg);
    const SimResult r = run_simulation(catalog, trace, session_policy);
    EXPECT_EQ(r.totals.sessions, trace.size());
    EXPECT_GT(r.totals.accepted, 0u);
    EXPECT_GT(r.totals.utility_time, 0.0);
    // The underlying backend saw stream lifecycle events.
    EXPECT_GT(session_policy.backend().counters().events, 0u);
  }
  // Determinism: same catalog + trace + policy config => same totals.
  SessionPolicy a(catalog), b(catalog);
  const SimResult ra = run_simulation(catalog, trace, a);
  const SimResult rb = run_simulation(catalog, trace, b);
  EXPECT_EQ(ra.totals.utility_time, rb.totals.utility_time);
  EXPECT_EQ(ra.totals.accepted, rb.totals.accepted);
  // The sharded backend drives the simulator through the same seam and,
  // under kResolve, lands on the same totals bit-for-bit.
  engine::ServeConfig sharded;
  sharded.policy = engine::ServePolicy::kResolve;
  engine::ServeConfig single = sharded;
  sharded.shards = 3;
  SessionPolicy sp(catalog, sharded), sq(catalog, single);
  const SimResult rs = run_simulation(catalog, trace, sp);
  const SimResult rq = run_simulation(catalog, trace, sq);
  EXPECT_EQ(sp.backend().num_shards(), 3);
  EXPECT_EQ(rs.totals.utility_time, rq.totals.utility_time);
  EXPECT_EQ(rs.totals.accepted, rq.totals.accepted);
  // Requires the session's cap form.
  const auto mmd = small_workload().instance;
  if (!mmd.is_unit_skew())
    EXPECT_THROW(SessionPolicy{mmd}, std::invalid_argument);
}

TEST(Engine, TotalsAreConsistent) {
  const auto w = small_workload();
  const auto trace = small_trace(w.instance);
  ThresholdPolicy policy(w.instance);
  const SimResult r = run_simulation(w.instance, trace, policy);
  EXPECT_EQ(r.totals.sessions, trace.size());
  EXPECT_EQ(r.totals.accepted + r.totals.rejected, r.totals.sessions);
  EXPECT_GE(r.totals.utility_time, 0.0);
  EXPECT_GT(r.totals.accepted, 0u);
}

TEST(Engine, ThresholdPolicyNeverViolates) {
  const auto w = small_workload(3);
  const auto trace = small_trace(w.instance, 4);
  ThresholdPolicy policy(w.instance);
  const SimResult r = run_simulation(w.instance, trace, policy);
  EXPECT_EQ(r.totals.violations, 0u);
  for (std::size_t i = 0; i < r.totals.peak_utilization.size(); ++i)
    EXPECT_LE(r.totals.peak_utilization[i], 1.0 + 1e-9);
}

TEST(Engine, AllocatePolicyWithGuardNeverViolates) {
  const auto w = small_workload(5);
  const auto trace = small_trace(w.instance, 6);
  const double mu = model::global_skew(w.instance).mu;
  OnlineAllocatePolicy policy(w.instance, mu, /*guard=*/true);
  const SimResult r = run_simulation(w.instance, trace, policy);
  EXPECT_EQ(r.totals.violations, 0u);
}

TEST(Engine, TimelineIsMonotonicInTime) {
  const auto w = small_workload(7);
  const auto trace = small_trace(w.instance, 8);
  ThresholdPolicy policy(w.instance);
  SimConfig cfg;
  cfg.sample_interval = 5.0;
  const SimResult r = run_simulation(w.instance, trace, policy, cfg);
  ASSERT_GT(r.timeline.size(), 2u);
  for (std::size_t i = 1; i < r.timeline.size(); ++i)
    EXPECT_GT(r.timeline[i].time, r.timeline[i - 1].time);
}

TEST(Engine, AllLoadReleasedAfterDrain) {
  const auto w = small_workload(9);
  const auto trace = small_trace(w.instance, 10);
  ThresholdPolicy policy(w.instance);
  const SimResult r = run_simulation(w.instance, trace, policy);
  // The last timeline sample is at/after the final departure: zero active.
  const SimSample& last = r.timeline.back();
  EXPECT_EQ(last.active_sessions, 0u);
  EXPECT_NEAR(last.active_utility, 0.0, 1e-9);
  for (double u : last.server_utilization) EXPECT_NEAR(u, 0.0, 1e-9);
}

TEST(Engine, RandomPolicyAcceptsNoMoreThanThreshold) {
  const auto w = small_workload(11);
  const auto trace = small_trace(w.instance, 12);
  ThresholdPolicy threshold(w.instance);
  RandomPolicy random(w.instance, 0.3, 99);
  const SimResult rt = run_simulation(w.instance, trace, threshold);
  const SimResult rr = run_simulation(w.instance, trace, random);
  // Not guaranteed sample-by-sample, but with p = 0.3 the coin-flip policy
  // must accept strictly fewer sessions over a 200-unit horizon.
  EXPECT_LT(rr.totals.accepted, rt.totals.accepted);
  EXPECT_EQ(rr.totals.violations, 0u);
}

TEST(Engine, EmptyTrace) {
  const auto w = small_workload(13);
  ThresholdPolicy policy(w.instance);
  const SimResult r = run_simulation(w.instance, {}, policy);
  EXPECT_EQ(r.totals.sessions, 0u);
  EXPECT_EQ(r.totals.utility_time, 0.0);
}

TEST(Engine, UtilityTimeMatchesHandComputedToyCase) {
  // One stream, one user, deterministic trace: utility 2 for 10 time
  // units, then nothing.
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 5.0);
  const auto s = b.add_stream({1.0});
  const auto u = b.add_user({10.0});
  b.add_interest(u, s, 2.0, {2.0});
  const model::Instance inst = std::move(b).build();
  std::vector<gen::Session> trace{{/*arrival=*/5.0, /*duration=*/10.0, s}};
  ThresholdPolicy policy(inst);
  const SimResult r = run_simulation(inst, trace, policy);
  EXPECT_EQ(r.totals.accepted, 1u);
  EXPECT_NEAR(r.totals.utility_time, 2.0 * 10.0, 1e-9);
}

TEST(Engine, OverlappingSessionsAccumulate) {
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 10.0);
  const auto s0 = b.add_stream({1.0});
  const auto s1 = b.add_stream({1.0});
  const auto u = b.add_user({100.0});
  b.add_interest(u, s0, 3.0, {3.0});
  b.add_interest(u, s1, 4.0, {4.0});
  const model::Instance inst = std::move(b).build();
  // s0 on [0,10); s1 on [5,15): overlap [5,10) carries utility 7.
  std::vector<gen::Session> trace{{0.0, 10.0, s0}, {5.0, 10.0, s1}};
  ThresholdPolicy policy(inst);
  const SimResult r = run_simulation(inst, trace, policy);
  EXPECT_NEAR(r.totals.utility_time, 3 * 10 + 4 * 10.0, 1e-9);
}


TEST(Engine, SampleCapBoundsTimelineOnLongDrains) {
  // A session that outlives the horizon by orders of magnitude must not
  // blow up the timeline (engine caps samples; totals stay exact).
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 5.0);
  const auto s = b.add_stream({1.0});
  const auto u = b.add_user({10.0});
  b.add_interest(u, s, 2.0, {2.0});
  const model::Instance inst = std::move(b).build();
  std::vector<gen::Session> trace{{0.0, 1e9, s}};
  ThresholdPolicy policy(inst);
  SimConfig cfg;
  cfg.sample_interval = 1.0;
  cfg.max_samples = 500;
  const SimResult r = run_simulation(inst, trace, policy, cfg);
  EXPECT_LE(r.timeline.size(), 501u) << "cap plus the final drained sample";
  EXPECT_NEAR(r.totals.utility_time, 2.0 * 1e9, 1e3) << "totals stay exact";
}

TEST(Engine, PoliciesReportNamesAndGuardState) {
  const auto w = small_workload(21);
  OnlineAllocatePolicy allocate(w.instance, 64.0, true);
  ThresholdPolicy threshold(w.instance);
  RandomPolicy random(w.instance, 0.5, 3);
  EXPECT_EQ(allocate.name(), "allocate");
  EXPECT_EQ(threshold.name(), "threshold");
  EXPECT_EQ(random.name(), "random");
  EXPECT_EQ(allocate.guard_trips(), 0u);
}

TEST(Engine, SameTraceSamePolicyIsDeterministic) {
  const auto w = small_workload(22);
  const auto trace = small_trace(w.instance, 23);
  RandomPolicy p1(w.instance, 0.4, 77);
  RandomPolicy p2(w.instance, 0.4, 77);
  const SimResult a = run_simulation(w.instance, trace, p1);
  const SimResult b = run_simulation(w.instance, trace, p2);
  EXPECT_EQ(a.totals.accepted, b.totals.accepted);
  EXPECT_EQ(a.totals.utility_time, b.totals.utility_time);
}

TEST(Engine, DeparturesFreeCapacityForLaterSessions) {
  // Budget fits one stream at a time; back-to-back sessions must both be
  // admitted because the first departs before the second arrives.
  model::InstanceBuilder b(1, 1);
  b.set_budget(0, 1.0);
  const auto s0 = b.add_stream({1.0});
  const auto s1 = b.add_stream({1.0});
  const auto u = b.add_user({100.0});
  b.add_interest(u, s0, 1.0, {1.0});
  b.add_interest(u, s1, 1.0, {1.0});
  const model::Instance inst = std::move(b).build();
  std::vector<gen::Session> trace{{0.0, 5.0, s0}, {6.0, 5.0, s1}};
  ThresholdPolicy policy(inst);
  const SimResult r = run_simulation(inst, trace, policy);
  EXPECT_EQ(r.totals.accepted, 2u);
  // And overlapping ones cannot both fit:
  std::vector<gen::Session> overlap{{0.0, 5.0, s0}, {2.0, 5.0, s1}};
  ThresholdPolicy policy2(inst);
  const SimResult r2 = run_simulation(inst, overlap, policy2);
  EXPECT_EQ(r2.totals.accepted, 1u);
}

}  // namespace
}  // namespace vdist::sim
