// Parameterized approximation-ratio tests: every theorem bound of
// Sections 2-4 is checked empirically against the exact optimum on
// families of random instances. These are the library's property tests —
// the proven worst-case factors must hold on every sampled instance.
#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.h"
#include "core/greedy.h"
#include "core/mmd_solver.h"
#include "core/partial_enum.h"
#include "core/skew_bands.h"
#include "gen/random_instances.h"
#include "model/factory.h"
#include "model/validate.h"

namespace vdist::core {
namespace {

constexpr double kE = 2.718281828459045;

struct RatioCase {
  std::size_t streams;
  std::size_t users;
  double budget_fraction;
  double cap_fraction;
  std::uint64_t seed;
};

std::vector<RatioCase> cap_cases() {
  std::vector<RatioCase> cases;
  std::uint64_t seed = 1;
  for (std::size_t streams : {8u, 12u, 16u})
    for (std::size_t users : {4u, 8u})
      for (double bf : {0.2, 0.5})
        for (double cf : {0.35, 0.8})
          cases.push_back({streams, users, bf, cf, seed++});
  return cases;
}

class CapRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(CapRatioTest, FeasibleGreedyWithinTheorem28Bound) {
  const RatioCase& rc = GetParam();
  gen::RandomCapConfig cfg;
  cfg.num_streams = rc.streams;
  cfg.num_users = rc.users;
  cfg.budget_fraction = rc.budget_fraction;
  cfg.cap_fraction = rc.cap_fraction;
  cfg.seed = rc.seed;
  const model::Instance inst = gen::random_cap_instance(cfg);

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const SmdSolveResult alg = solve_unit_skew(inst, SmdMode::kFeasible);

  EXPECT_TRUE(model::validate(alg.assignment).feasible());
  EXPECT_LE(alg.utility, opt.utility + 1e-6) << "ALG cannot beat OPT";
  // Theorem 2.8: ALG >= OPT * (e-1)/(3e).
  const double bound = opt.utility * (kE - 1.0) / (3.0 * kE);
  EXPECT_GE(alg.utility + 1e-9, bound)
      << "streams=" << rc.streams << " users=" << rc.users
      << " seed=" << rc.seed;
}

TEST_P(CapRatioTest, AugmentedGreedyWithinCorollary27Bound) {
  const RatioCase& rc = GetParam();
  gen::RandomCapConfig cfg;
  cfg.num_streams = rc.streams;
  cfg.num_users = rc.users;
  cfg.budget_fraction = rc.budget_fraction;
  cfg.cap_fraction = rc.cap_fraction;
  cfg.seed = rc.seed + 1000;
  const model::Instance inst = gen::random_cap_instance(cfg);

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const SmdSolveResult aug = solve_unit_skew(inst, SmdMode::kAugmented);
  EXPECT_TRUE(model::validate(aug.assignment).server_feasible());
  // Corollary 2.7: capped utility >= OPT * (e-1)/(2e).
  const double bound = opt.utility * (kE - 1.0) / (2.0 * kE);
  EXPECT_GE(aug.utility + 1e-9, bound) << "seed=" << cfg.seed;
}

TEST_P(CapRatioTest, PartialEnumAtLeastAsGoodAsGreedy) {
  const RatioCase& rc = GetParam();
  if (rc.streams > 12) GTEST_SKIP() << "partial enum O(S^3) guard";
  gen::RandomCapConfig cfg;
  cfg.num_streams = rc.streams;
  cfg.num_users = rc.users;
  cfg.budget_fraction = rc.budget_fraction;
  cfg.cap_fraction = rc.cap_fraction;
  cfg.seed = rc.seed + 2000;
  const model::Instance inst = gen::random_cap_instance(cfg);

  const SmdSolveResult greedy = solve_unit_skew(inst, SmdMode::kFeasible);
  PartialEnumOptions opts;
  opts.seed_size = 2;  // keep the sweep fast; 3 is covered in E3
  const PartialEnumResult enum_result = partial_enum_unit_skew(inst, opts);
  EXPECT_FALSE(enum_result.truncated);
  EXPECT_GE(enum_result.best.utility + 1e-9, greedy.utility);
  EXPECT_TRUE(model::validate(enum_result.best.assignment).feasible());

  // Theorem 2.10 (with seed_size 3 the proven factor is 2e/(e-1); with the
  // reduced seed we still must beat the plain-greedy bound).
  const ExactResult opt = solve_exact(inst);
  const double bound = opt.utility * (kE - 1.0) / (3.0 * kE);
  EXPECT_GE(enum_result.best.utility + 1e-9, bound);
}

INSTANTIATE_TEST_SUITE_P(CapSweep, CapRatioTest,
                         ::testing::ValuesIn(cap_cases()));

// --- Theorem 2.5: resource augmentation vs. reduced-budget optimum --------

TEST(ResourceAugmentation, GreedyBeatsReducedBudgetOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomCapConfig cfg;
    cfg.num_streams = 12;
    cfg.num_users = 6;
    cfg.budget_fraction = 0.4;
    cfg.seed = seed * 17;
    const model::Instance inst = gen::random_cap_instance(cfg);

    // Build the same instance with budget B - cmax.
    double cmax = 0.0;
    std::vector<double> costs(inst.num_streams());
    for (std::size_t s = 0; s < costs.size(); ++s) {
      costs[s] = inst.cost(static_cast<model::StreamId>(s), 0);
      cmax = std::max(cmax, costs[s]);
    }
    const double reduced_budget = inst.budget(0) - cmax;
    if (reduced_budget <= cmax) continue;  // degenerate draw
    std::vector<double> caps(inst.num_users());
    std::vector<model::CapEdge> edges;
    for (std::size_t u = 0; u < inst.num_users(); ++u)
      caps[u] = inst.capacity(static_cast<model::UserId>(u), 0);
    for (std::size_t s = 0; s < inst.num_streams(); ++s) {
      const auto sid = static_cast<model::StreamId>(s);
      const auto users = inst.users_of(sid);
      const auto utils = inst.utilities_of(sid);
      for (std::size_t t = 0; t < users.size(); ++t)
        edges.push_back({users[t], sid, utils[t]});
    }
    const model::Instance reduced =
        model::build_cap_instance(costs, reduced_budget, caps, edges);
    const ExactResult opt_minus = solve_exact(reduced);
    ASSERT_TRUE(opt_minus.proven_optimal);

    // Theorem 2.5: the semi-feasible greedy achieves (1 - 1/e) * OPT^-.
    const GreedyResult g = greedy_unit_skew(inst);
    EXPECT_GE(g.capped_utility + 1e-9,
              (1.0 - 1.0 / kE) * opt_minus.utility)
        << "seed " << seed;
  }
}

// --- Theorem 3.1: arbitrary skew -------------------------------------------

struct SkewCase {
  double target_skew;
  std::uint64_t seed;
};

class SkewRatioTest : public ::testing::TestWithParam<SkewCase> {};

TEST_P(SkewRatioTest, WithinClassifyAndSelectBound) {
  const SkewCase& sc = GetParam();
  gen::RandomSmdConfig cfg;
  cfg.num_streams = 12;
  cfg.num_users = 6;
  cfg.target_skew = sc.target_skew;
  cfg.budget_fraction = 0.35;
  cfg.capacity_fraction = 0.5;
  cfg.seed = sc.seed;
  const model::Instance inst = gen::random_smd_instance(cfg);

  const SkewBandsResult bands = solve_smd_any_skew(inst);
  EXPECT_TRUE(model::validate(bands.assignment).feasible());

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_LE(bands.utility, opt.utility + 1e-6);

  // Theorem 3.1: ratio O(log 2*alpha); concretely 2t * (3e/(e-1)) with
  // t = 1 + floor(log2 alpha).
  const double t = std::max(1.0, 1.0 + std::floor(std::log2(bands.alpha)));
  const double factor = 2.0 * t * (3.0 * kE / (kE - 1.0));
  EXPECT_GE(bands.utility * factor + 1e-9, opt.utility)
      << "alpha=" << bands.alpha << " seed=" << sc.seed;
}

std::vector<SkewCase> skew_cases() {
  std::vector<SkewCase> cases;
  std::uint64_t seed = 100;
  for (double skew : {1.0, 2.0, 8.0, 64.0, 1024.0})
    for (int rep = 0; rep < 3; ++rep) cases.push_back({skew, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, SkewRatioTest,
                         ::testing::ValuesIn(skew_cases()));

// --- Theorem 4.4: full MMD pipeline ----------------------------------------

struct MmdCase {
  int m;
  int mc;
  std::uint64_t seed;
};

class MmdRatioTest : public ::testing::TestWithParam<MmdCase> {};

TEST_P(MmdRatioTest, WithinTheorem44Bound) {
  const MmdCase& mcse = GetParam();
  gen::RandomMmdConfig cfg;
  cfg.num_streams = 10;
  cfg.num_users = 5;
  cfg.num_server_measures = mcse.m;
  cfg.num_user_measures = mcse.mc;
  cfg.budget_fraction = 0.4;
  cfg.capacity_fraction = 0.5;
  cfg.seed = mcse.seed;
  const model::Instance inst = gen::random_mmd_instance(cfg);

  const MmdSolveResult alg = solve_mmd(inst);
  EXPECT_TRUE(model::validate(alg.assignment).feasible());

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_LE(alg.utility, opt.utility + 1e-6);

  // Theorem 4.4 concrete factor: (2m-1)(2mc-1) * 2t * 3e/(e-1), with t the
  // band count of the reduced instance.
  const double t = std::max(1, alg.num_bands);
  const double factor = (2.0 * mcse.m - 1.0) * (2.0 * mcse.mc - 1.0) * 2.0 *
                        t * (3.0 * kE / (kE - 1.0));
  EXPECT_GE(alg.utility * factor + 1e-9, opt.utility)
      << "m=" << mcse.m << " mc=" << mcse.mc << " seed=" << mcse.seed;
}

std::vector<MmdCase> mmd_cases() {
  std::vector<MmdCase> cases;
  std::uint64_t seed = 500;
  for (int m : {1, 2, 4})
    for (int mc : {1, 2})
      for (int rep = 0; rep < 3; ++rep) cases.push_back({m, mc, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(MmdSweep, MmdRatioTest,
                         ::testing::ValuesIn(mmd_cases()));

}  // namespace
}  // namespace vdist::core
