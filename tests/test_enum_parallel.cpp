// Parallel-DFS determinism of the §2.3 enumeration (core/partial_enum.h):
// any thread count must reproduce the single-threaded walk bit-for-bit —
// objective bits, assignment pair set, and every reported counter — and
// the single-threaded walk must itself match the from-scratch PR-3
// formulation (one fresh seeded greedy per seed set). Run across every
// registered unit-skew scenario so the replay/parallel machinery is
// exercised on all the edge shapes the generators produce, not just the
// cap family.
#include <gtest/gtest.h>

#include "assignment_pairs.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/greedy.h"
#include "core/partial_enum.h"
#include "engine/scenario.h"
#include "model/instance.h"
#include "model/view.h"
#include "util/float_cmp.h"

namespace vdist::core {
namespace {

using engine::ScenarioRegistry;
using engine::ScenarioSpec;
using model::Assignment;
using model::Instance;
using model::InstanceView;
using model::StreamId;
using model::UserId;

using vdist::testing::pairs;

// PR-3 semantics, reimplemented naively for the feasible mode: every
// seed set of cardinality seed_size gets its own fresh seeded greedy,
// smaller sets are evaluated directly, and the best candidate (after the
// Theorem 2.8 split) wins. Mirrors the reference in test_checkpoint.cpp;
// kept local so this suite stays self-contained.
SmdSolveResult reference_partial_enum(const Instance& inst, int seed_size) {
  const InstanceView view = InstanceView::cap_form(inst);
  SmdSolveResult best{Assignment(inst), -1.0, "none", {}};
  auto consider = [&](Assignment&& a, double utility,
                      const std::string& variant) {
    if (utility > best.utility) best = {std::move(a), utility, variant, {}};
  };
  auto offer = [&](GreedyResult&& g) {
    FeasibleSplit split = split_last_stream(inst, g.assignment);
    if (split.w1 >= split.w2)
      consider(std::move(split.a1), split.w1, "A1");
    else
      consider(std::move(split.a2), split.w2, "A2");
  };

  offer(greedy_unit_skew(inst));
  {
    Assignment amax = best_single_stream(inst);
    const double w = view_capped_utility(view, amax);
    consider(std::move(amax), w, "Amax");
  }

  const auto S = static_cast<StreamId>(inst.num_streams());
  const double B = inst.budget(0);
  std::vector<StreamId> current;
  auto enumerate = [&](auto&& self, StreamId start, double cost,
                       int target) -> void {
    if (static_cast<int>(current.size()) == target) {
      if (target < seed_size) {
        // Directly evaluated small set: the same saturation rule as the
        // engine's cap-form utility.
        Assignment a(inst);
        std::vector<double> rem(inst.num_users());
        for (std::size_t u = 0; u < rem.size(); ++u)
          rem[u] = inst.capacity(static_cast<UserId>(u), 0);
        double capped = 0.0;
        for (StreamId s : current) {
          for (model::EdgeId e = inst.first_edge(s); e < inst.last_edge(s);
               ++e) {
            const UserId u = inst.edge_user(e);
            const double w = inst.edge_utility(e);
            if (rem[static_cast<std::size_t>(u)] <= util::kAbsEps || w <= 0.0)
              continue;
            a.assign(u, s);
            capped += std::min(w, rem[static_cast<std::size_t>(u)]);
            rem[static_cast<std::size_t>(u)] -= w;
          }
        }
        GreedyResult g{std::move(a), capped, {}, {}};
        offer(std::move(g));
      } else {
        offer(greedy_unit_skew_seeded(inst, current));
      }
      return;
    }
    for (StreamId s = start; s < S; ++s) {
      const double c = inst.cost(s, 0);
      if (!util::approx_le(cost + c, B)) continue;
      current.push_back(s);
      self(self, s + 1, cost + c, target);
      current.pop_back();
    }
  };
  for (int k = 1; k <= seed_size; ++k) enumerate(enumerate, 0, 0.0, k);
  return best;
}

// Builds a deliberately small instance of every registered scenario:
// sizes are shrunk where the scenario declares the knobs so depth-2
// enumeration stays fast; scenarios whose output is not a unit-skew SMD
// instance (the enum solver's form) are skipped by the caller.
Instance small_scenario_instance(const std::string& name,
                                 std::uint64_t seed) {
  const auto& registry = ScenarioRegistry::global();
  const engine::ScenarioInfo& info = registry.info(name);
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = seed;
  if (info.declares("streams")) spec.params.set("streams", 14);
  if (info.declares("users")) spec.params.set("users", 6);
  if (info.declares("interest")) spec.params.set("interest", 3);
  // The trace scenario expands sessions into streams; a short horizon
  // keeps the expanded stream count in the same small regime.
  if (info.declares("horizon")) spec.params.set("horizon", 30);
  if (info.declares("events")) spec.params.set("events", 20);
  if (info.declares("interests-per-user"))
    spec.params.set("interests-per-user", 4);
  return registry.build(spec);
}

TEST(PartialEnumParallel, BitIdenticalAcrossThreadCountsAndScenarios) {
  std::size_t covered = 0;
  for (const std::string& name : ScenarioRegistry::global().names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance inst = small_scenario_instance(name, seed);
      if (!inst.is_smd() || !inst.is_unit_skew()) continue;  // not enum's form
      for (const int depth : {1, 2}) {
        PartialEnumOptions opts;
        opts.seed_size = depth;
        PartialEnumResult single = partial_enum_unit_skew(inst, opts);
        const auto single_pairs = pairs(single.best.assignment);
        for (const int threads : {2, 4}) {
          opts.threads = threads;
          const PartialEnumResult parallel = partial_enum_unit_skew(inst, opts);
          const std::string where = name + " seed " + std::to_string(seed) +
                                    " depth " + std::to_string(depth) +
                                    " threads " + std::to_string(threads);
          // Bit-identical, not approximately equal: the parallel walk
          // claims the exact sequential reduction.
          EXPECT_EQ(parallel.best.utility, single.best.utility) << where;
          EXPECT_EQ(parallel.best.variant, single.best.variant) << where;
          EXPECT_EQ(pairs(parallel.best.assignment), single_pairs) << where;
          EXPECT_EQ(parallel.candidates_evaluated, single.candidates_evaluated)
              << where;
          EXPECT_EQ(parallel.frames_reused, single.frames_reused) << where;
          EXPECT_EQ(parallel.completions_replayed,
                    single.completions_replayed)
              << where;
          EXPECT_EQ(parallel.select.evaluations, single.select.evaluations)
              << where;
          EXPECT_EQ(parallel.select.picks, single.select.picks) << where;
        }
        opts.threads = 1;
        // And the single-threaded walk equals the from-scratch PR-3
        // reference (same decisions; accumulator rounding may differ).
        const SmdSolveResult reference = reference_partial_enum(inst, depth);
        EXPECT_TRUE(util::approx_eq(single.best.utility, reference.utility))
            << name << " seed " << seed << " depth " << depth << " fast "
            << single.best.utility << " ref " << reference.utility;
        EXPECT_EQ(single.best.variant, reference.variant)
            << name << " seed " << seed << " depth " << depth;
        EXPECT_EQ(single_pairs, pairs(reference.assignment))
            << name << " seed " << seed << " depth " << depth;
        ++covered;
      }
    }
  }
  // The registry must keep contributing unit-skew workloads; if this
  // drops to a handful the suite silently stopped testing anything.
  EXPECT_GE(covered, 3u * 3u * 2u);  // >= 3 scenarios x 3 seeds x 2 depths
}

// The shared-prefix replay must actually engage on a depth-2 walk: every
// sibling leaf after the first in a first-seed subtree restores the
// parent frame, and on the cap family most of them replay to completion
// without an engine fallback.
TEST(PartialEnumParallel, ReplayCountersEngage) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", 40).set("users", 10);
  spec.seed = 1;
  const Instance inst = engine::build_scenario(spec);
  PartialEnumOptions opts;
  opts.seed_size = 2;
  const PartialEnumResult r = partial_enum_unit_skew(inst, opts);
  EXPECT_GT(r.frames_reused, 0u);
  EXPECT_GT(r.completions_replayed, 0u);
  EXPECT_LE(r.completions_replayed, r.frames_reused);
  // Replay is a pure acceleration: disabling it via the naive strategy
  // (which keeps the per-leaf engine loop) must not move the answer.
  PartialEnumOptions naive = opts;
  naive.strategy = SelectStrategy::kNaiveScan;
  const PartialEnumResult ref = partial_enum_unit_skew(inst, naive);
  EXPECT_EQ(ref.frames_reused, 0u);
  EXPECT_EQ(r.best.utility, ref.best.utility);
  EXPECT_EQ(pairs(r.best.assignment), pairs(ref.best.assignment));
}

}  // namespace
}  // namespace vdist::core
