// The selection kernel (core/select.h): differential equivalence of the
// delta-heap, lazy-heap and naive-scan strategies, the deterministic
// tie-break contract, exact delta propagation via update(), and
// SolveWorkspace reuse.
#include "core/select.h"

#include <gtest/gtest.h>

#include "assignment_pairs.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/greedy.h"
#include "core/partial_enum.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "model/factory.h"
#include "model/instance.h"

namespace vdist::core {
namespace {

using engine::ScenarioRegistry;
using engine::ScenarioSpec;
using engine::SolveRequest;
using engine::SolveResult;
using model::Instance;
using model::StreamId;
using model::UserId;

using vdist::testing::pairs;

SolveResult solve_with(const Instance& inst, const std::string& algorithm,
                       const char* select, SolveWorkspace* ws = nullptr) {
  SolveRequest req;
  req.instance = &inst;
  req.algorithm = algorithm;
  req.options.set("select", select);
  if (algorithm == "enum") req.options.set("depth", 2);
  req.strict = true;
  req.workspace = ws;
  return engine::solve(req);
}

// Every algorithm that funnels through the kernel, applicable to `inst`.
std::vector<std::string> kernel_algorithms(const Instance& inst) {
  std::vector<std::string> algos = {"pipeline"};
  if (inst.is_smd()) algos.push_back("bands");
  if (inst.is_smd() && inst.is_unit_skew()) {
    algos.push_back("greedy");
    algos.push_back("greedy-plain");
    algos.push_back("greedy-augmented");
    algos.push_back("enum");
  }
  return algos;
}

// The headline differential guarantee: on every registered scenario, for
// several seeds, every kernel-backed algorithm produces the identical
// assignment, objective, variant and pick count under all three
// strategies (exact delta propagation, global-round lazy, naive rescan).
TEST(SelectKernel, AllStrategiesMatchOnEveryRegisteredScenario) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  for (const std::string& name : registry.names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ScenarioSpec spec;
      spec.name = name;
      spec.seed = seed;
      const Instance inst = engine::build_scenario(spec);
      for (const std::string& algo : kernel_algorithms(inst)) {
        const SolveResult naive = solve_with(inst, algo, "naive");
        ASSERT_TRUE(naive.ok) << name << "/" << algo << ": " << naive.error;
        for (const char* strategy : {"delta", "lazy"}) {
          const SolveResult fast = solve_with(inst, algo, strategy);
          ASSERT_TRUE(fast.ok)
              << name << "/" << algo << ": " << fast.error;
          EXPECT_EQ(fast.objective, naive.objective)
              << name << "/" << algo << "/" << strategy << " seed " << seed;
          EXPECT_EQ(fast.variant, naive.variant)
              << name << "/" << algo << "/" << strategy << " seed " << seed;
          // Work counters match across strategies except under "enum",
          // where the shared-prefix replay (delta-heap only) scores most
          // leaves without touching the kernel — fewer picks, same bits.
          if (algo != "enum") {
            EXPECT_EQ(fast.stat("select_picks"), naive.stat("select_picks"))
                << name << "/" << algo << "/" << strategy << " seed " << seed;
          }
          EXPECT_EQ(pairs(fast.solution()), pairs(naive.solution()))
              << name << "/" << algo << "/" << strategy << " seed " << seed;
        }
      }
    }
  }
}

// Traces — the exact stream consideration order — must match too, not
// just the final assignment.
TEST(SelectKernel, GreedyTracesIdenticalAcrossStrategies) {
  for (const char* scenario : {"cap", "trace"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ScenarioSpec spec;
      spec.name = scenario;
      spec.seed = seed;
      const Instance inst = engine::build_scenario(spec);
      const GreedyResult naive =
          greedy_unit_skew(inst, {SelectStrategy::kNaiveScan, nullptr});
      for (const SelectStrategy strategy :
           {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap}) {
        const GreedyResult fast = greedy_unit_skew(inst, {strategy, nullptr});
        EXPECT_EQ(fast.trace.considered, naive.trace.considered)
            << scenario << "/" << to_string(strategy) << " seed " << seed;
        EXPECT_EQ(fast.trace.added, naive.trace.added)
            << scenario << "/" << to_string(strategy) << " seed " << seed;
        EXPECT_EQ(fast.trace.skipped_budget, naive.trace.skipped_budget);
        EXPECT_EQ(fast.capped_utility, naive.capped_utility);
        EXPECT_EQ(fast.select.picks, naive.select.picks);
      }
    }
  }
}

// The heap strategies must be equivalent *and* cheaper: far fewer
// effectiveness evaluations than the rescan, and the exact delta path
// must never evaluate more than the global round-bump.
TEST(SelectKernel, DeltaAndLazyEvaluateFarLessThanNaive) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", 300).set("users", 80);
  spec.seed = 7;
  const Instance inst = engine::build_scenario(spec);
  const GreedyResult delta =
      greedy_unit_skew(inst, {SelectStrategy::kDeltaHeap, nullptr});
  const GreedyResult lazy =
      greedy_unit_skew(inst, {SelectStrategy::kLazyHeap, nullptr});
  const GreedyResult naive =
      greedy_unit_skew(inst, {SelectStrategy::kNaiveScan, nullptr});
  EXPECT_EQ(delta.capped_utility, naive.capped_utility);
  EXPECT_EQ(lazy.capped_utility, naive.capped_utility);
  EXPECT_LT(lazy.select.evaluations * 10, naive.select.evaluations);
  // Untouched entries never re-evaluate under delta stamps, so delta's
  // evaluation count is bounded by lazy's.
  EXPECT_LE(delta.select.evaluations, lazy.select.evaluations);
}

// Exact effectiveness tie: the larger residual utility w̄ wins.
TEST(SelectKernel, TieBreakPrefersLargerResidual) {
  // eff(s0) = 4/2 = 2, eff(s1) = 6/3 = 2 (tie), eff(s2) = 1.
  const Instance inst = model::build_cap_instance(
      {2.0, 3.0, 1.0}, 100.0, {100.0},
      {{0, 0, 4.0}, {0, 1, 6.0}, {0, 2, 1.0}});
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap,
        SelectStrategy::kNaiveScan}) {
    const GreedyResult g = greedy_unit_skew(inst, {strategy, nullptr});
    ASSERT_GE(g.trace.considered.size(), 2u) << to_string(strategy);
    EXPECT_EQ(g.trace.considered[0], 1) << to_string(strategy);
    EXPECT_EQ(g.trace.considered[1], 0) << to_string(strategy);
  }
}

// Near-tie (within the library tolerance): both effectiveness values and
// residuals count as tied, so the lowest stream id wins — even though
// stream 1's effectiveness is bit-wise larger. An exact `==` tie-break
// would pick stream 1 here.
TEST(SelectKernel, NearTieFallsBackToLowestStreamId) {
  const double w0 = 5.0;
  const double w1 = 5.0 + 5e-12;  // relative difference 1e-12 << 1e-9
  const Instance inst = model::build_cap_instance(
      {1.0, 1.0}, 100.0, {100.0}, {{0, 0, w0}, {0, 1, w1}});
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap,
        SelectStrategy::kNaiveScan}) {
    const GreedyResult g = greedy_unit_skew(inst, {strategy, nullptr});
    ASSERT_FALSE(g.trace.considered.empty());
    EXPECT_EQ(g.trace.considered[0], 0) << to_string(strategy);
  }
}

// Zero-cost streams have infinite effectiveness; infinities tie only
// with each other and then fall back to w̄ and id like everything else.
TEST(SelectKernel, ZeroCostStreamsRankFirstUnderBothStrategies) {
  const Instance inst = model::build_cap_instance(
      {0.0, 0.0, 1.0}, 1.0, {100.0},
      {{0, 0, 0.5}, {0, 1, 2.0}, {0, 2, 50.0}});
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap,
        SelectStrategy::kNaiveScan}) {
    const GreedyResult g = greedy_unit_skew(inst, {strategy, nullptr});
    ASSERT_GE(g.trace.considered.size(), 3u);
    EXPECT_EQ(g.trace.considered[0], 1) << "larger w̄ among the two infs";
    EXPECT_EQ(g.trace.considered[1], 0);
    EXPECT_EQ(g.trace.considered[2], 2);
  }
}

// The StreamSelector itself: pops drain the pool in effectiveness order,
// remove() excludes streams, stats count picks.
TEST(StreamSelector, PopsInEffectivenessOrderAndHonorsRemove) {
  SolveWorkspace ws;
  ws.wbar = {10.0, 30.0, 20.0, 5.0};
  ws.cost = {1.0, 1.0, 1.0, 1.0};
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap,
        SelectStrategy::kNaiveScan}) {
    StreamSelector sel;
    sel.reset(ws, ws.wbar, ws.cost, strategy);
    EXPECT_EQ(sel.pool_size(), 4u);
    sel.remove(2);
    EXPECT_FALSE(sel.contains(2));
    EXPECT_EQ(sel.pop_best(), 1);
    EXPECT_EQ(sel.pop_best(), 0);
    EXPECT_EQ(sel.pop_best(), 3);
    EXPECT_EQ(sel.pop_best(), model::kInvalidStream);
    EXPECT_EQ(sel.stats().picks, 3u);
  }
}

// Lazy re-evaluation: decreasing w̄ between pops (with invalidate())
// must demote a stream exactly like a fresh rescan would.
TEST(StreamSelector, StaleEntriesAreReevaluatedAfterInvalidate) {
  SolveWorkspace ws;
  ws.wbar = {8.0, 10.0, 6.0};
  ws.cost = {1.0, 1.0, 1.0};
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap}) {
    ws.wbar = {8.0, 10.0, 6.0};
    StreamSelector sel;
    sel.reset(ws, ws.wbar, ws.cost, strategy);
    EXPECT_EQ(sel.pop_best(), 1) << to_string(strategy);
    ws.wbar[0] = 0.5;  // stream 0's stale entry (8.0) now overestimates
    sel.invalidate();
    EXPECT_EQ(sel.pop_best(), 2) << to_string(strategy);
    EXPECT_EQ(sel.pop_best(), 0) << to_string(strategy);
  }
}

// Exact delta propagation: update(s, w̄) demotes exactly the touched
// stream; untouched entries stay fresh and are never re-evaluated.
TEST(StreamSelector, DeltaUpdateDemotesExactlyLikeARescan) {
  SolveWorkspace ws;
  ws.wbar = {8.0, 10.0, 6.0, 7.0};
  ws.cost = {1.0, 1.0, 1.0, 1.0};
  StreamSelector sel;
  sel.reset(ws, ws.wbar, ws.cost, SelectStrategy::kDeltaHeap);
  const std::size_t evals_after_reset = sel.stats().evaluations;
  EXPECT_EQ(sel.pop_best(), 1);
  // Demote stream 0 below everything; streams 2 and 3 stay fresh.
  ws.wbar[0] = 0.5;
  sel.update(0, ws.wbar[0]);
  EXPECT_EQ(sel.pop_best(), 3);
  EXPECT_EQ(sel.pop_best(), 2);
  EXPECT_EQ(sel.pop_best(), 0);
  EXPECT_EQ(sel.pop_best(), model::kInvalidStream);
  // Only the one touched stream ever re-evaluated.
  EXPECT_EQ(sel.stats().evaluations, evals_after_reset + 1);
}

// Selector checkpointing: save/restore rewinds the pool and heap so the
// same pops replay identically; the stats keep counting monotonically.
TEST(StreamSelector, SaveRestoreReplaysPops) {
  SolveWorkspace ws;
  ws.wbar = {8.0, 10.0, 6.0};
  ws.cost = {1.0, 1.0, 1.0};
  StreamSelector sel;
  sel.reset(ws, ws.wbar, ws.cost, SelectStrategy::kDeltaHeap);
  SelectorCheckpoint cp;
  sel.save(cp);
  EXPECT_EQ(sel.pop_best(), 1);
  EXPECT_EQ(sel.pop_best(), 0);
  const std::size_t picks_before = sel.stats().picks;
  sel.restore(cp);
  EXPECT_EQ(sel.pool_size(), 3u);
  EXPECT_EQ(sel.pop_best(), 1);
  EXPECT_EQ(sel.pop_best(), 0);
  EXPECT_EQ(sel.pop_best(), 2);
  EXPECT_EQ(sel.stats().picks, picks_before + 3);
}

// A checkpoint taken AFTER updates must carry the SoA heap verbatim —
// including the stale entry left by update() (the delta strategy defers
// the re-evaluation to pop time, so the saved eff[]/stamp[] prefix holds
// a lazy entry whose refresh must replay identically after restore).
TEST(StreamSelector, SaveAfterUpdatesRestoresStaleState) {
  SolveWorkspace ws;
  ws.wbar = {8.0, 10.0, 6.0, 4.0};
  ws.cost = {1.0, 1.0, 1.0, 1.0};
  StreamSelector sel;
  sel.reset(ws, ws.wbar, ws.cost, SelectStrategy::kDeltaHeap);
  EXPECT_EQ(sel.pop_best(), 1);
  // Demote stream 0 below 2 and 3 without touching the heap: the stale
  // key 8.0 still sits at the top until a pop refreshes it.
  ws.wbar[0] = 0.5;
  sel.update(0, ws.wbar[0]);
  SelectorCheckpoint cp;
  sel.save(cp);
  EXPECT_EQ(sel.pop_best(), 2);
  EXPECT_EQ(sel.pop_best(), 3);
  EXPECT_EQ(sel.pop_best(), 0);
  const std::size_t evals_first_drain = sel.stats().evaluations;
  sel.restore(cp);
  EXPECT_EQ(sel.pool_size(), 3u);
  EXPECT_EQ(sel.pop_best(), 2);
  EXPECT_EQ(sel.pop_best(), 3);
  EXPECT_EQ(sel.pop_best(), 0);
  EXPECT_EQ(sel.pop_best(), model::kInvalidStream);
  // The replay re-evaluates exactly what the first drain did: one lazy
  // refresh of the demoted stream 0.
  EXPECT_EQ(sel.stats().evaluations, evals_first_drain + 1);
}

// The naive strategy's checkpoint is just the pool: save/restore must
// replay the scan picks (and their evaluation counts) identically.
TEST(StreamSelector, NaiveSaveRestoreReplaysScans) {
  SolveWorkspace ws;
  ws.wbar = {8.0, 10.0, 6.0};
  ws.cost = {1.0, 1.0, 1.0};
  StreamSelector sel;
  sel.reset(ws, ws.wbar, ws.cost, SelectStrategy::kNaiveScan);
  EXPECT_EQ(sel.pop_best(), 1);
  SelectorCheckpoint cp;
  sel.save(cp);
  EXPECT_EQ(sel.pop_best(), 0);
  const std::size_t evals_before = sel.stats().evaluations;
  sel.restore(cp);
  EXPECT_EQ(sel.pool_size(), 2u);
  EXPECT_EQ(sel.pop_best(), 0);
  EXPECT_EQ(sel.pop_best(), 2);
  EXPECT_EQ(sel.pop_best(), model::kInvalidStream);
  // Two scans over a 2- then 1-entry pool.
  EXPECT_EQ(sel.stats().evaluations, evals_before + 3);
}

// Two sequential solves on one workspace must equal two fresh solves —
// across different instances, sizes, and algorithms.
TEST(SolveWorkspace, SequentialSolvesMatchFreshSolves) {
  ScenarioSpec big;
  big.name = "cap";
  big.params.set("streams", 60).set("users", 20);
  big.seed = 11;
  ScenarioSpec small;
  small.name = "cap";
  small.params.set("streams", 25).set("users", 8);
  small.seed = 12;
  const Instance inst_big = engine::build_scenario(big);
  const Instance inst_small = engine::build_scenario(small);

  SolveWorkspace ws;
  // Big then small: shrinking buffers must not leak state.
  const GreedyResult reused_big =
      greedy_unit_skew(inst_big, {SelectStrategy::kDeltaHeap, &ws});
  const GreedyResult reused_small =
      greedy_unit_skew(inst_small, {SelectStrategy::kDeltaHeap, &ws});
  const GreedyResult fresh_big = greedy_unit_skew(inst_big);
  const GreedyResult fresh_small = greedy_unit_skew(inst_small);

  EXPECT_EQ(reused_big.capped_utility, fresh_big.capped_utility);
  EXPECT_EQ(reused_big.trace.considered, fresh_big.trace.considered);
  EXPECT_EQ(pairs(reused_big.assignment), pairs(fresh_big.assignment));
  EXPECT_EQ(reused_small.capped_utility, fresh_small.capped_utility);
  EXPECT_EQ(reused_small.trace.considered, fresh_small.trace.considered);
  EXPECT_EQ(pairs(reused_small.assignment), pairs(fresh_small.assignment));

  // And across algorithms: an enum solve after the greedy ones.
  PartialEnumOptions opts;
  opts.seed_size = 2;
  opts.workspace = &ws;
  const PartialEnumResult reused_enum =
      partial_enum_unit_skew(inst_small, opts);
  opts.workspace = nullptr;
  const PartialEnumResult fresh_enum =
      partial_enum_unit_skew(inst_small, opts);
  EXPECT_EQ(reused_enum.best.utility, fresh_enum.best.utility);
  EXPECT_EQ(pairs(reused_enum.best.assignment),
            pairs(fresh_enum.best.assignment));
}

// The registry path: an explicit workspace on the request changes
// nothing about the result.
TEST(SolveWorkspace, RegistrySolvesAreWorkspaceInvariant) {
  ScenarioSpec spec;
  spec.name = "mmd";
  spec.seed = 3;
  const Instance inst = engine::build_scenario(spec);
  SolveWorkspace ws;
  const SolveResult with_ws = solve_with(inst, "pipeline", "delta", &ws);
  const SolveResult fresh = solve_with(inst, "pipeline", "delta");
  ASSERT_TRUE(with_ws.ok) << with_ws.error;
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_EQ(with_ws.objective, fresh.objective);
  EXPECT_EQ(pairs(with_ws.solution()), pairs(fresh.solution()));
}

// Option plumbing: `select` is declared (strict mode accepts it) and
// validated (a bogus value is an error result, not silence).
TEST(SelectKernel, SelectOptionIsDeclaredAndValidated) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.seed = 1;
  const Instance inst = engine::build_scenario(spec);
  for (const char* algo :
       {"greedy", "greedy-plain", "greedy-augmented", "enum", "bands",
        "pipeline"}) {
    const SolveResult ok = solve_with(inst, algo, "naive");
    EXPECT_TRUE(ok.ok) << algo << ": " << ok.error;
    const SolveResult bad = solve_with(inst, algo, "bogus");
    EXPECT_FALSE(bad.ok) << algo;
    EXPECT_NE(bad.error.find("select"), std::string::npos) << bad.error;
  }
  EXPECT_THROW(parse_select_strategy("fastest"), std::invalid_argument);
  EXPECT_EQ(parse_select_strategy("delta"), SelectStrategy::kDeltaHeap);
  EXPECT_EQ(parse_select_strategy("lazy"), SelectStrategy::kLazyHeap);
  EXPECT_EQ(parse_select_strategy("naive"), SelectStrategy::kNaiveScan);
}

// Seeded greedy through the kernel: seeds leave the pool, duplicates are
// ignored, and both strategies continue identically after the seeds.
TEST(SelectKernel, SeededGreedyIdenticalAcrossStrategies) {
  ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", 40).set("users", 12)
      .set("budget-fraction", 0.5);
  spec.seed = 21;
  const Instance inst = engine::build_scenario(spec);
  const StreamId seeds[] = {3, 7, 3};  // duplicate on purpose
  const GreedyResult naive = greedy_unit_skew_seeded(
      inst, seeds, {SelectStrategy::kNaiveScan, nullptr});
  for (const SelectStrategy strategy :
       {SelectStrategy::kDeltaHeap, SelectStrategy::kLazyHeap}) {
    const GreedyResult fast =
        greedy_unit_skew_seeded(inst, seeds, {strategy, nullptr});
    EXPECT_EQ(fast.trace.considered, naive.trace.considered);
    EXPECT_EQ(fast.capped_utility, naive.capped_utility);
  }
  ASSERT_GE(naive.trace.considered.size(), 2u);
  EXPECT_EQ(naive.trace.considered[0], 3);
  EXPECT_EQ(naive.trace.considered[1], 7);
  // The duplicate seed was dropped: stream 3 appears exactly once.
  EXPECT_EQ(std::count(naive.trace.considered.begin(),
                       naive.trace.considered.end(), StreamId{3}),
            1);
}

}  // namespace
}  // namespace vdist::core
