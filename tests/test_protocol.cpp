#include "dist/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "dist/cache.h"

namespace vdist::dist {
namespace {

// Runs `fn`, which must throw ProtocolError, and returns the kind.
template <typename Fn>
ProtocolErrorKind kind_of(Fn&& fn) {
  try {
    fn();
  } catch (const ProtocolError& e) {
    return e.kind();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "threw non-ProtocolError: " << e.what();
    return ProtocolErrorKind::kBadPayload;
  }
  ADD_FAILURE() << "no ProtocolError thrown";
  return ProtocolErrorKind::kBadPayload;
}

Frame round_trip(const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::size_t consumed = 0;
  const auto decoded = try_decode_frame(bytes, &consumed);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, bytes.size());
  return *decoded;
}

// --- Framing ----------------------------------------------------------------

TEST(Protocol, FrameRoundTripPreservesTypeAndPayload) {
  Frame frame;
  frame.type = MsgType::kCellAssign;
  frame.payload = std::string("hello\0world", 11);  // embedded NUL survives
  const Frame decoded = round_trip(frame);
  EXPECT_EQ(decoded.type, MsgType::kCellAssign);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(Protocol, PartialFramesDecodeToNullopt) {
  const std::string bytes = encode_frame(encode(HelloMsg{1, 4}));
  std::size_t consumed = 1;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        try_decode_frame(bytes.substr(0, cut), &consumed).has_value());
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Protocol, BackToBackFramesDecodeInOrder) {
  const std::string bytes = encode_frame(encode(HeartbeatMsg{7})) +
                            encode_frame(encode_shutdown());
  std::size_t consumed = 0;
  const auto first = try_decode_frame(bytes, &consumed);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kHeartbeat);
  const auto second =
      try_decode_frame(std::string_view(bytes).substr(consumed), &consumed);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kShutdown);
}

TEST(Protocol, OversizedDeclaredLengthIsRejectedBeforeThePayloadArrives) {
  // Header declares 4 GiB-ish; only 5 header bytes are present — the
  // decoder must error now rather than wait for a payload that big.
  std::string bytes = {'\xff', '\xff', '\xff', '\xff',
                       static_cast<char>(MsgType::kHello)};
  std::size_t consumed = 0;
  EXPECT_EQ(kind_of([&] { (void)try_decode_frame(bytes, &consumed); }),
            ProtocolErrorKind::kOversized);
}

TEST(Protocol, GarbageTypeByteIsRejected) {
  std::string bytes = {'\0', '\0', '\0', '\0', '\x63'};  // type 99
  std::size_t consumed = 0;
  EXPECT_EQ(kind_of([&] { (void)try_decode_frame(bytes, &consumed); }),
            ProtocolErrorKind::kBadType);
}

TEST(Protocol, EncodingAnOversizedPayloadThrows) {
  Frame frame;
  frame.type = MsgType::kCellResult;
  frame.payload.resize(kMaxFrameBytes + 1);
  EXPECT_EQ(kind_of([&] { (void)encode_frame(frame); }),
            ProtocolErrorKind::kOversized);
}

// --- Message codecs ---------------------------------------------------------

TEST(Protocol, EveryMessageTypeRoundTrips) {
  const HelloMsg hello = decode_hello(round_trip(encode(HelloMsg{3, 17})));
  EXPECT_EQ(hello.version, 3u);
  EXPECT_EQ(hello.capacity, 17u);

  const CellAssignMsg assign = decode_cell_assign(
      round_trip(encode(CellAssignMsg{42, "cell text\nwith lines"})));
  EXPECT_EQ(assign.job_id, 42u);
  EXPECT_EQ(assign.job, "cell text\nwith lines");

  const CellResultMsg ok_result = decode_cell_result(
      round_trip(encode(CellResultMsg{42, true, "{\"records\":[]}"})));
  EXPECT_EQ(ok_result.job_id, 42u);
  EXPECT_TRUE(ok_result.ok);
  EXPECT_EQ(ok_result.payload, "{\"records\":[]}");

  const CellResultMsg err_result = decode_cell_result(
      round_trip(encode(CellResultMsg{7, false, "unknown algorithm"})));
  EXPECT_FALSE(err_result.ok);
  EXPECT_EQ(err_result.payload, "unknown algorithm");

  const HeartbeatMsg beat = decode_heartbeat(
      round_trip(encode(HeartbeatMsg{0xDEADBEEFCAFEF00DULL})));
  EXPECT_EQ(beat.token, 0xDEADBEEFCAFEF00DULL);

  decode_shutdown(round_trip(encode_shutdown()));  // must not throw

  const ErrorMsg error =
      decode_error(round_trip(encode(ErrorMsg{"nope"})));
  EXPECT_EQ(error.message, "nope");
}

TEST(Protocol, DecodingTheWrongTypeIsBadType) {
  const Frame hello = encode(HelloMsg{});
  EXPECT_EQ(kind_of([&] { (void)decode_cell_assign(hello); }),
            ProtocolErrorKind::kBadType);
}

TEST(Protocol, TruncatedPayloadIsTruncated) {
  Frame frame = encode(HelloMsg{1, 4});
  frame.payload.resize(frame.payload.size() - 1);
  EXPECT_EQ(kind_of([&] { (void)decode_hello(frame); }),
            ProtocolErrorKind::kTruncated);
  // A string field whose declared length overruns the payload too.
  Frame assign = encode(CellAssignMsg{1, "abcdef"});
  assign.payload.resize(assign.payload.size() - 2);
  EXPECT_EQ(kind_of([&] { (void)decode_cell_assign(assign); }),
            ProtocolErrorKind::kTruncated);
}

TEST(Protocol, TrailingBytesAreBadPayload) {
  Frame frame = encode(HelloMsg{1, 4});
  frame.payload.push_back('\0');
  EXPECT_EQ(kind_of([&] { (void)decode_hello(frame); }),
            ProtocolErrorKind::kBadPayload);
  Frame shutdown = encode_shutdown();
  shutdown.payload = "x";
  EXPECT_EQ(kind_of([&] { decode_shutdown(shutdown); }),
            ProtocolErrorKind::kBadPayload);
}

TEST(Protocol, HelloVersionMismatchIsRefused) {
  check_hello_version(HelloMsg{kProtocolVersion, 1});  // must not throw
  EXPECT_EQ(
      kind_of([&] { check_hello_version(HelloMsg{kProtocolVersion + 1, 1}); }),
      ProtocolErrorKind::kVersionMismatch);
}

// --- Cell jobs --------------------------------------------------------------

CellJob sample_job() {
  CellJob job;
  job.scenario.name = "cap";
  job.scenario.seed = 100;
  job.scenario.params.set("streams", 12).set("users", 5);
  job.scenario_label = "cap streams=12";
  job.algorithm.name = "enum";
  job.algorithm.options.set("depth", 2).set("order", "ratio desc");
  job.algorithm_label = "enum depth=2";
  job.replicates = 3;
  job.time_budget_ms = 12.5;
  job.validate = true;
  job.base_seed = 0xFEEDFACE12345678ULL;  // > 2^53: must survive as text
  job.request_indices = {4, 10, 16};
  return job;
}

TEST(Protocol, CellJobRoundTripsExactly) {
  const CellJob job = sample_job();
  const std::string text = serialize_cell_job(job);
  const CellJob back = parse_cell_job(text);
  EXPECT_EQ(back.scenario.name, job.scenario.name);
  EXPECT_EQ(back.scenario.seed, job.scenario.seed);
  EXPECT_EQ(back.scenario.params.raw(), job.scenario.params.raw());
  EXPECT_EQ(back.scenario_label, job.scenario_label);
  EXPECT_EQ(back.algorithm.name, job.algorithm.name);
  EXPECT_EQ(back.algorithm.options.raw(), job.algorithm.options.raw());
  EXPECT_EQ(back.algorithm_label, job.algorithm_label);
  EXPECT_EQ(back.replicates, job.replicates);
  EXPECT_EQ(back.time_budget_ms, job.time_budget_ms);
  EXPECT_EQ(back.validate, job.validate);
  EXPECT_EQ(back.base_seed, job.base_seed);
  EXPECT_EQ(back.request_indices, job.request_indices);
  // Canonical: re-serialization is byte-identical (the cache key needs
  // this).
  EXPECT_EQ(serialize_cell_job(back), text);
}

TEST(Protocol, CellJobSerializationRejectsUnrepresentableFields) {
  CellJob job = sample_job();
  job.scenario_label = "two\nlines";
  EXPECT_THROW((void)serialize_cell_job(job), std::invalid_argument);
  job = sample_job();
  job.scenario.name = "has space";
  EXPECT_THROW((void)serialize_cell_job(job), std::invalid_argument);
  job = sample_job();
  job.request_indices.pop_back();  // 2 indices for 3 replicates
  EXPECT_THROW((void)serialize_cell_job(job), std::invalid_argument);
}

TEST(Protocol, MalformedCellJobTextIsBadPayload) {
  const std::string good = serialize_cell_job(sample_job());
  EXPECT_EQ(kind_of([&] { (void)parse_cell_job("not a job\n"); }),
            ProtocolErrorKind::kBadPayload);
  // Missing the end terminator.
  EXPECT_EQ(kind_of([&] {
              (void)parse_cell_job(good.substr(0, good.size() - 4));
            }),
            ProtocolErrorKind::kBadPayload);
  // Unknown directive.
  EXPECT_EQ(kind_of([&] {
              (void)parse_cell_job("cell-job v1\nfrobnicate yes\nend\n");
            }),
            ProtocolErrorKind::kBadPayload);
  // Content after end.
  EXPECT_EQ(kind_of([&] { (void)parse_cell_job(good + "extra\n"); }),
            ProtocolErrorKind::kBadPayload);
}

// --- Run records ------------------------------------------------------------

TEST(Protocol, RunRecordsRoundTripBitForBit) {
  std::vector<engine::RunRecord> records(2);
  records[0].ok = true;
  records[0].feasible = true;
  records[0].feasibility = model::Feasibility::kFeasible;
  records[0].objective = 1.0 / 3.0;  // needs all 17 digits
  records[0].raw_utility = 0.1;
  records[0].upper_bound = 1e300;
  records[0].wall_ms = 12.375;
  records[0].seed = (1ULL << 63) + 12345;  // far past 2^53
  records[0].variant = "A2";
  records[0].stats = {{"evals", 12345.0}, {"ratio", 2.2250738585072014e-308}};
  records[1].ok = false;
  records[1].feasibility = model::Feasibility::kInfeasible;
  records[1].error = "solver limit \"exceeded\"\n(line two)";

  const std::string text = serialize_run_records(records);
  const std::vector<engine::RunRecord> back = parse_run_records(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].ok);
  EXPECT_TRUE(back[0].feasible);
  EXPECT_EQ(back[0].objective, records[0].objective);
  EXPECT_EQ(back[0].raw_utility, records[0].raw_utility);
  EXPECT_EQ(back[0].upper_bound, records[0].upper_bound);
  EXPECT_EQ(back[0].wall_ms, records[0].wall_ms);
  EXPECT_EQ(back[0].seed, records[0].seed);
  EXPECT_EQ(back[0].variant, "A2");
  EXPECT_EQ(back[0].stats, records[0].stats);
  EXPECT_FALSE(back[1].ok);
  EXPECT_EQ(back[1].feasibility, model::Feasibility::kInfeasible);
  EXPECT_EQ(back[1].error, records[1].error);
  // The stability the cache rests on: serialize(parse(x)) == x.
  EXPECT_EQ(serialize_run_records(back), text);
}

TEST(Protocol, MalformedRunRecordsAreBadPayload) {
  EXPECT_EQ(kind_of([&] { (void)parse_run_records("not json"); }),
            ProtocolErrorKind::kBadPayload);
  EXPECT_EQ(kind_of([&] { (void)parse_run_records("{\"rows\":[]}"); }),
            ProtocolErrorKind::kBadPayload);
  EXPECT_EQ(kind_of([&] {
              (void)parse_run_records("{\"records\":[{\"ok\":true}]}");
            }),
            ProtocolErrorKind::kBadPayload);  // missing seed
}

// --- Cache keys -------------------------------------------------------------

TEST(Protocol, Sha256MatchesKnownVectors) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // A >1 block message (448-bit padding edge).
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Protocol, CacheKeyDependsOnEverySolveInput) {
  const CellJob job = sample_job();
  const std::string key = cell_cache_key(job, "build-a");
  EXPECT_EQ(key.size(), 64u);
  EXPECT_EQ(cell_cache_key(job, "build-a"), key);  // deterministic

  EXPECT_NE(cell_cache_key(job, "build-b"), key);  // new build, new key

  CellJob tweaked = job;
  tweaked.scenario.params.set("streams", 13);
  EXPECT_NE(cell_cache_key(tweaked, "build-a"), key);

  tweaked = job;
  tweaked.base_seed += 1;
  EXPECT_NE(cell_cache_key(tweaked, "build-a"), key);

  // The global request indices feed the per-solve seed derivation, so
  // they are part of the cell's identity too.
  tweaked = job;
  tweaked.request_indices[1] += 1;
  EXPECT_NE(cell_cache_key(tweaked, "build-a"), key);
}

}  // namespace
}  // namespace vdist::dist
