// Quickstart: build a tiny video-distribution instance by hand, solve it
// with the Theorem 1.1 pipeline, and print who receives what.
//
//   ./examples/quickstart
//
// The scenario: a head-end with two constrained resources (bandwidth,
// transcoder slots) serving three gateways, each with an incoming
// bandwidth cap. Exactly the MMD problem of the paper, in miniature.
#include <iostream>

#include "core/mmd_solver.h"
#include "model/instance.h"
#include "model/validate.h"

int main() {
  using namespace vdist;

  // Two server measures: Mbps of egress, transcoder slots.
  model::InstanceBuilder b(/*m=*/2, /*mc=*/1);
  b.set_budget(0, 30.0);  // 30 Mbps egress
  b.set_budget(1, 3.0);   // 3 transcoder slots

  const auto news = b.add_stream({4.0, 1.0}, "news-sd");
  const auto sports = b.add_stream({12.0, 1.0}, "sports-hd");
  const auto movies = b.add_stream({18.0, 2.0}, "movies-uhd");
  const auto kids = b.add_stream({4.0, 1.0}, "kids-sd");

  // Gateways with incoming-bandwidth caps (the single user measure).
  const auto north = b.add_user({20.0}, "gateway-north");
  const auto south = b.add_user({16.0}, "gateway-south");
  const auto east = b.add_user({40.0}, "gateway-east");

  // add_interest(user, stream, utility, {loads...}): utility is revenue,
  // the load is the stream's bitrate at the gateway.
  b.add_interest(north, news, 2.0, {4.0});
  b.add_interest(north, sports, 6.0, {12.0});
  b.add_interest(south, news, 1.5, {4.0});
  b.add_interest(south, kids, 3.0, {4.0});
  b.add_interest(south, sports, 5.0, {12.0});
  b.add_interest(east, movies, 9.0, {18.0});
  b.add_interest(east, sports, 4.0, {12.0});
  b.add_interest(east, kids, 1.0, {4.0});

  const model::Instance inst = std::move(b).build();

  const core::MmdSolveResult result = core::solve_mmd(inst);

  std::cout << "total utility: " << result.utility << "\n";
  std::cout << "feasible: "
            << (model::validate(result.assignment).feasible() ? "yes" : "no")
            << "\n\n";
  std::cout << "server carries:";
  for (model::StreamId s : result.assignment.range())
    std::cout << ' ' << inst.stream_name(s);
  std::cout << "\n\n";
  for (std::size_t u = 0; u < inst.num_users(); ++u) {
    const auto uid = static_cast<model::UserId>(u);
    std::cout << inst.user_name(uid) << " receives:";
    for (model::StreamId s : result.assignment.streams_of(uid))
      std::cout << ' ' << inst.stream_name(s);
    std::cout << "  (utility " << result.assignment.user_utility(uid)
              << ", load " << result.assignment.user_load(uid, 0) << "/"
              << inst.capacity(uid, 0) << " Mbps)\n";
  }
  std::cout << "\nserver egress: " << result.assignment.server_cost(0) << "/"
            << inst.budget(0) << " Mbps, transcoders: "
            << result.assignment.server_cost(1) << "/" << inst.budget(1)
            << "\n";
  return 0;
}
