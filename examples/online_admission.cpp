// Live admission control: replay a day of stream-session churn through
// the discrete-event simulator with Algorithm Allocate (Section 5) as the
// policy, next to the naive threshold controller, and render an ASCII
// utilization timeline.
//
//   ./examples/online_admission [seed]
#include <cstdlib>
#include <iostream>

#include "gen/iptv.h"
#include "gen/trace.h"
#include "model/skew.h"
#include "sim/engine.h"
#include "util/table.h"

namespace {

void print_timeline(const std::string& label,
                    const vdist::sim::SimResult& result) {
  std::cout << label << " bandwidth utilization (one row per sample):\n";
  // Render at most ~24 sample rows, each a bar of up to 50 chars.
  const std::size_t stride =
      std::max<std::size_t>(1, result.timeline.size() / 24);
  for (std::size_t i = 0; i < result.timeline.size(); i += stride) {
    const auto& s = result.timeline[i];
    const double util = s.server_utilization.empty()
                            ? 0.0
                            : s.server_utilization[0];
    const auto bars = static_cast<std::size_t>(util * 50.0);
    std::cout << "  t=" << vdist::util::format_double(s.time, 0) << "\t|"
              << std::string(bars, '#') << std::string(50 - bars, '.') << "| "
              << vdist::util::format_double(100 * util, 0) << "%  ("
              << s.active_sessions << " sessions)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdist;

  gen::IptvConfig icfg;
  icfg.num_channels = 100;
  icfg.num_users = 200;
  icfg.bandwidth_fraction = 0.25;
  if (argc > 1) icfg.seed = std::strtoull(argv[1], nullptr, 10);
  const gen::IptvWorkload w = gen::make_iptv_workload(icfg);

  gen::TraceConfig tcfg;
  tcfg.arrival_rate = 1.0;
  tcfg.mean_duration = 60.0;
  tcfg.horizon = 720.0;  // a half-day of minutes
  tcfg.seed = icfg.seed + 1;
  const auto trace = gen::make_trace(w.instance, tcfg);
  std::cout << trace.size() << " sessions over " << tcfg.horizon
            << " minutes\n\n";

  const double mu = model::global_skew(w.instance).mu;
  sim::OnlineAllocatePolicy allocate(w.instance, mu, true);
  sim::ThresholdPolicy threshold(w.instance);

  sim::SimConfig scfg;
  scfg.sample_interval = 30.0;
  const sim::SimResult ra = run_simulation(w.instance, trace, allocate, scfg);
  const sim::SimResult rt = run_simulation(w.instance, trace, threshold, scfg);

  util::Table table({"policy", "utility-time", "accepted", "rejected",
                     "peak bw%", "violations"});
  auto add = [&](const std::string& name, const sim::SimResult& r) {
    table.row().add(name).add(r.totals.utility_time, 0)
        .add(r.totals.accepted).add(r.totals.rejected)
        .add(100 * r.totals.peak_utilization[0], 1).add(r.totals.violations);
  };
  add("allocate (Sec. 5)", ra);
  add("threshold", rt);
  table.print_aligned(std::cout, "half-day summary");
  std::cout << '\n';

  print_timeline("allocate", ra);
  std::cout << '\n';
  print_timeline("threshold", rt);
  return 0;
}
