// IPTV head-end planning: generate a realistic channel catalog and
// subscriber population (Fig. 1 of the paper), then compare the paper's
// algorithms against the threshold admission control used in practice.
//
//   ./examples/iptv_headend [seed]
//
// Prints the planned lineup, per-tier service quality, and the policy
// comparison table.
#include <cstdlib>
#include <iostream>
#include <map>

#include "baseline/policies.h"
#include "core/allocate_online.h"
#include "core/mmd_solver.h"
#include "gen/iptv.h"
#include "model/validate.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vdist;

  gen::IptvConfig cfg;
  cfg.num_channels = 180;
  cfg.num_users = 300;
  cfg.bandwidth_fraction = 0.3;
  cfg.decorrelate_price = true;
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const model::Instance& inst = w.instance;

  std::cout << "catalog: " << inst.num_streams() << " channels, "
            << inst.num_users() << " subscribers, " << inst.num_edges()
            << " interests (seed " << cfg.seed << ")\n"
            << "budgets: " << inst.budget(0) << " Mbps egress, "
            << inst.budget(1) << " transcode units, " << inst.budget(2)
            << " ports\n\n";

  const core::MmdSolveResult plan = core::solve_mmd(inst);

  // Lineup summary by channel class.
  std::map<std::string, int> carried_by_class;
  for (model::StreamId s : plan.assignment.range()) {
    const auto& ch = w.channels[static_cast<std::size_t>(s)];
    const char* klass = ch.klass == gen::ChannelClass::kSd   ? "SD"
                        : ch.klass == gen::ChannelClass::kHd ? "HD"
                                                             : "UHD";
    ++carried_by_class[klass];
  }
  std::cout << "planned lineup: " << plan.assignment.range_size()
            << " channels (";
  bool first = true;
  for (const auto& [klass, count] : carried_by_class) {
    if (!first) std::cout << ", ";
    std::cout << count << " " << klass;
    first = false;
  }
  std::cout << "), utility " << plan.utility << "\n";

  // Per-tier service.
  std::map<std::string, std::pair<int, double>> tier_stats;
  for (std::size_t u = 0; u < inst.num_users(); ++u) {
    auto& [subscribers, utility] = tier_stats[w.user_tiers[u]];
    ++subscribers;
    utility += plan.assignment.user_utility(static_cast<model::UserId>(u));
  }
  util::Table tiers({"tier", "subscribers", "mean revenue"});
  for (const auto& [tier, stats] : tier_stats)
    tiers.row().add(tier).add(static_cast<std::size_t>(stats.first))
        .add(stats.second / stats.first, 2);
  tiers.print_aligned(std::cout, "service by tier");

  // Policy comparison.
  util::Table table({"policy", "utility", "channels", "egress util%"});
  auto add_row = [&](const std::string& name, const model::Assignment& a) {
    table.row().add(name).add(a.utility(), 1).add(a.range_size())
        .add(100.0 * a.server_cost(0) / inst.budget(0), 1);
  };
  add_row("mmd-solver (this paper)", plan.assignment);
  add_row("allocate (online)", core::allocate_online(inst).assignment);
  add_row("threshold FCFS", baseline::fcfs_admission(inst).assignment);
  baseline::ThresholdOptions density;
  density.order = baseline::StreamOrder::kDensityDesc;
  add_row("threshold by-density",
          baseline::threshold_admission(inst, density).assignment);
  table.print_aligned(std::cout, "policy comparison");
  return 0;
}
