// Variant selection: every channel is offered in SD/HD/UHD encodings and
// the head-end may carry at most one encoding per channel (the group
// constraint of the paper's related work [6]). Shows how the chosen
// lineup's quality mix responds to the egress budget.
//
//   ./examples/variant_lineup [seed]
#include <cstdlib>
#include <iostream>

#include "core/group_select.h"
#include "gen/iptv.h"
#include "model/validate.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vdist;

  std::uint64_t seed = 3;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  util::Table table({"egress frac", "utility", "channels", "SD", "HD", "UHD",
                     "dropped variants", "feasible"});
  for (double bw : {0.15, 0.3, 0.5, 0.8}) {
    gen::IptvConfig cfg;
    cfg.num_channels = 150;  // 50 logical channels x 3 encodings
    cfg.num_users = 200;
    cfg.variants_per_channel = 3;
    cfg.bandwidth_fraction = bw;
    cfg.seed = seed;
    const gen::IptvWorkload w = gen::make_iptv_workload(cfg);

    const core::GroupSelectResult r =
        core::solve_with_groups(w.instance, w.variant_group);
    int sd = 0, hd = 0, uhd = 0;
    for (model::StreamId s : r.assignment.range()) {
      switch (w.channels[static_cast<std::size_t>(s)].klass) {
        case gen::ChannelClass::kSd: ++sd; break;
        case gen::ChannelClass::kHd: ++hd; break;
        case gen::ChannelClass::kUhd: ++uhd; break;
      }
    }
    table.row()
        .add(bw, 2)
        .add(r.utility, 1)
        .add(r.groups_used)
        .add(sd)
        .add(hd)
        .add(uhd)
        .add(r.variants_dropped)
        .add(model::validate(r.assignment).feasible() &&
                     core::satisfies_group_constraint(r.assignment,
                                                      w.variant_group)
                 ? "yes"
                 : "NO");
  }
  table.print_aligned(std::cout, "lineup quality mix vs egress budget");
  std::cout << "reading: with a starved uplink the lineup is mostly SD;\n"
               "as egress grows the same channels upgrade to HD/UHD.\n";
  return 0;
}
