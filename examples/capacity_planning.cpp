// Capacity planning ("what if we bought a bigger uplink?"): sweep the
// head-end bandwidth budget and chart utility against it, using the
// Theorem 1.1 solver as the planning oracle. The knee of the curve is
// where additional bandwidth stops paying for itself.
//
//   ./examples/capacity_planning [seed]
#include <cstdlib>
#include <iostream>

#include "core/mmd_solver.h"
#include "gen/iptv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vdist;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  util::Table table({"bw fraction", "egress Mbps", "utility",
                     "marginal utility / Mbps", "channels"});
  double prev_utility = 0.0;
  double prev_budget = 0.0;
  std::vector<std::pair<double, double>> curve;  // fraction -> utility
  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    gen::IptvConfig cfg;
    cfg.num_channels = 150;
    cfg.num_users = 250;
    cfg.bandwidth_fraction = fraction;
    cfg.decorrelate_price = true;
    cfg.seed = seed;  // same catalog/subscribers; only the budget moves
    const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
    const core::MmdSolveResult plan = core::solve_mmd(w.instance);
    const double budget = w.instance.budget(0);
    const double marginal = (plan.utility - prev_utility) /
                            std::max(budget - prev_budget, 1e-9);
    table.row()
        .add(fraction, 2)
        .add(budget, 0)
        .add(plan.utility, 1)
        .add(prev_budget > 0 ? util::format_double(marginal, 3) : "-")
        .add(plan.assignment.range_size());
    curve.emplace_back(fraction, plan.utility);
    prev_utility = plan.utility;
    prev_budget = budget;
  }
  table.print_aligned(std::cout, "utility vs egress budget");

  // The knee: the smallest budget reaching ~99% of the best utility seen.
  // Beyond it bandwidth is no longer the binding resource (processing and
  // port budgets take over).
  double best = 0.0;
  for (const auto& [f, u] : curve) best = std::max(best, u);
  for (const auto& [f, u] : curve) {
    if (u >= 0.99 * best) {
      std::cout << "bandwidth stops being the binding resource around "
                   "fraction "
                << util::format_double(f, 2) << " (" << util::format_double(u, 0)
                << " of " << util::format_double(best, 0)
                << " peak utility); further egress buys little\n";
      break;
    }
  }
  return 0;
}
