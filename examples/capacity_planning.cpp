// Capacity planning ("what if we bought a bigger uplink?"): sweep the
// head-end bandwidth budget and chart utility against it, using the
// Theorem 1.1 solver as the planning oracle. The knee of the curve is
// where additional bandwidth stops paying for itself.
//
// The what-if grid is a declarative engine::SweepPlan — one scenario
// axis over the iptv workload's bandwidth-fraction, one algorithm cell —
// so adding rate plans, solvers or seed replicates is a data change, and
// the cells run concurrently on the batch runner's thread pool.
//
//   ./examples/capacity_planning [seed]
#include <cstdlib>
#include <iostream>

#include "engine/sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vdist;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  engine::SweepPlan plan;
  plan.scenarios = {{.name = "iptv",
                     .params = engine::SolveOptions()
                                   .set("streams", 150)
                                   .set("users", 250)
                                   .set("decorrelate", 1),
                     // same catalog/subscribers; only the budget moves
                     .seed = seed}};
  plan.scenario_axes = {{"bandwidth-fraction",
                         {"0.1", "0.2", "0.3", "0.4", "0.5", "0.6", "0.8",
                          "1"}}};
  plan.algorithms = {{.name = "pipeline"}};
  engine::SweepOptions options;
  options.keep_instances = true;  // the table reports the egress budget
  options.keep_assignments = true;
  const engine::SweepResult sweep = engine::run_sweep(plan, options);
  const std::string error = sweep.first_error();
  if (!error.empty()) {
    std::cerr << "capacity sweep failed: " << error << "\n";
    return 1;
  }

  util::Table table({"bw fraction", "egress Mbps", "utility",
                     "marginal utility / Mbps", "channels"});
  double prev_utility = 0.0;
  double prev_budget = 0.0;
  std::vector<std::pair<double, double>> curve;  // fraction -> utility
  for (std::size_t sc = 0; sc < sweep.num_scenario_cells; ++sc) {
    const engine::SweepCell& cell = sweep.cell(sc, 0);
    const engine::RunRecord& run = cell.runs[0];
    const double fraction =
        cell.scenario.params.get_double("bandwidth-fraction", 0.0);
    const double budget = sweep.instance(sc, 0).budget(0);
    const double marginal = (run.objective - prev_utility) /
                            std::max(budget - prev_budget, 1e-9);
    table.row()
        .add(fraction, 2)
        .add(budget, 0)
        .add(run.objective, 1)
        .add(prev_budget > 0 ? util::format_double(marginal, 3) : "-")
        .add(run.assignment->range_size());
    curve.emplace_back(fraction, run.objective);
    prev_utility = run.objective;
    prev_budget = budget;
  }
  table.print_aligned(std::cout, "utility vs egress budget");

  // The knee: the smallest budget reaching ~99% of the best utility seen.
  // Beyond it bandwidth is no longer the binding resource (processing and
  // port budgets take over).
  double best = 0.0;
  for (const auto& [f, u] : curve) best = std::max(best, u);
  for (const auto& [f, u] : curve) {
    if (u >= 0.99 * best) {
      std::cout << "bandwidth stops being the binding resource around "
                   "fraction "
                << util::format_double(f, 2) << " (" << util::format_double(u, 0)
                << " of " << util::format_double(best, 0)
                << " peak utility); further egress buys little\n";
      break;
    }
  }
  return 0;
}
