// vdist command-line tool: generate, inspect and solve MMD instances.
//
//   vdist_cli gen   --kind cap|smd|mmd|iptv|small|tightness [options] --out F
//   vdist_cli stats F
//   vdist_cli solve F [--algo pipeline|greedy|enum|online|threshold|exact]
//
// See `vdist_cli help` for every option. Instances use the text format of
// src/io/instance_io.h.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "baseline/policies.h"
#include "core/allocate_online.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/mmd_solver.h"
#include "core/partial_enum.h"
#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "gen/small_streams.h"
#include "gen/tightness.h"
#include "io/instance_io.h"
#include "model/skew.h"
#include "model/validate.h"
#include "util/stopwatch.h"

namespace {

using namespace vdist;

struct Args {
  std::string command;
  std::string file;
  std::map<std::string, std::string> options;
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        args.options[key] = argv[++i];
      else
        args.options[key] = "1";
    } else {
      args.file = token;
    }
  }
  return args;
}

std::string opt(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

std::size_t opt_u(const Args& args, const std::string& key, std::size_t dflt) {
  return std::stoul(opt(args, key, std::to_string(dflt)));
}

int cmd_gen(const Args& args) {
  const std::string kind = opt(args, "kind", "mmd");
  const auto seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  model::Instance inst = [&]() -> model::Instance {
    if (kind == "cap") {
      gen::RandomCapConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.seed = seed;
      return gen::random_cap_instance(cfg);
    }
    if (kind == "smd") {
      gen::RandomSmdConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.target_skew = std::stod(opt(args, "skew", "8"));
      cfg.seed = seed;
      return gen::random_smd_instance(cfg);
    }
    if (kind == "mmd") {
      gen::RandomMmdConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.num_server_measures = static_cast<int>(opt_u(args, "m", 2));
      cfg.num_user_measures = static_cast<int>(opt_u(args, "mc", 2));
      cfg.seed = seed;
      return gen::random_mmd_instance(cfg);
    }
    if (kind == "iptv") {
      gen::IptvConfig cfg;
      cfg.num_channels = opt_u(args, "streams", 150);
      cfg.num_users = opt_u(args, "users", 250);
      cfg.decorrelate_price = opt(args, "decorrelate", "0") == "1";
      cfg.seed = seed;
      return gen::make_iptv_workload(cfg).instance;
    }
    if (kind == "small") {
      gen::SmallStreamsConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 150);
      cfg.num_users = opt_u(args, "users", 15);
      cfg.seed = seed;
      return gen::small_streams_instance(cfg).instance;
    }
    if (kind == "tightness") {
      gen::TightnessConfig cfg;
      cfg.m = static_cast<int>(opt_u(args, "m", 4));
      cfg.mc = static_cast<int>(opt_u(args, "mc", 4));
      return gen::tightness_instance(cfg);
    }
    throw std::runtime_error("unknown --kind " + kind);
  }();

  const std::string out = opt(args, "out", "");
  if (out.empty()) {
    io::save_instance(std::cout, inst);
  } else {
    io::save_instance_file(out, inst);
    std::cerr << "wrote " << out << " (" << inst.num_streams() << " streams, "
              << inst.num_users() << " users, " << inst.num_edges()
              << " interests)\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const model::LocalSkewInfo ls = model::local_skew(inst);
  const model::GlobalSkewInfo gs = model::global_skew(inst);
  std::cout << "streams:       " << inst.num_streams() << "\n"
            << "users:         " << inst.num_users() << "\n"
            << "interests:     " << inst.num_edges() << "\n"
            << "m (server):    " << inst.num_server_measures() << "\n"
            << "mc (user):     " << inst.num_user_measures() << "\n"
            << "input length:  " << inst.input_length() << "\n"
            << "unit skew:     " << (inst.is_unit_skew() ? "yes" : "no")
            << "\n"
            << "local skew a:  " << ls.alpha << "\n"
            << "global skew g: " << gs.gamma << "\n"
            << "mu:            " << gs.mu << "\n"
            << "small-streams: "
            << (model::satisfies_small_streams(inst, gs) ? "yes" : "no")
            << "\n"
            << "utility upper bound: " << inst.utility_upper_bound() << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const std::string algo = opt(args, "algo", "pipeline");
  util::Stopwatch watch;
  model::Assignment result(inst);
  if (algo == "pipeline") {
    result = core::solve_mmd(inst).assignment;
  } else if (algo == "greedy") {
    result = core::solve_unit_skew(inst).assignment;
  } else if (algo == "enum") {
    core::PartialEnumOptions opts;
    opts.seed_size = static_cast<int>(opt_u(args, "depth", 3));
    result = core::partial_enum_unit_skew(inst, opts).best.assignment;
  } else if (algo == "online") {
    result = core::allocate_online(inst).assignment;
  } else if (algo == "threshold") {
    result = baseline::fcfs_admission(inst).assignment;
  } else if (algo == "exact") {
    result = core::solve_exact(inst).assignment;
  } else {
    throw std::runtime_error("unknown --algo " + algo);
  }
  const double ms = watch.elapsed_ms();
  const auto report = model::validate(result);
  std::cerr << "algo=" << algo << " utility=" << result.utility()
            << " streams=" << result.range_size() << " pairs="
            << result.num_assigned_pairs() << " feasible="
            << (report.feasible() ? "yes" : "NO") << " time_ms=" << ms
            << "\n";
  if (opt(args, "export", "0") == "1") io::save_assignment(std::cout, result);
  return 0;
}

int cmd_eval(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const std::string assignment_path = opt(args, "assignment", "");
  if (assignment_path.empty())
    throw std::runtime_error("eval requires --assignment FILE");
  std::ifstream is(assignment_path);
  if (!is) throw std::runtime_error("cannot open " + assignment_path);
  const model::Assignment a = io::load_assignment(is, inst);
  const auto report = model::validate(a);
  std::cout << "utility:   " << a.utility() << "\n"
            << "streams:   " << a.range_size() << "\n"
            << "pairs:     " << a.num_assigned_pairs() << "\n"
            << "feasible:  " << (report.feasible() ? "yes" : "NO") << "\n";
  for (const auto& v : report.violations)
    std::cout << "violation: " << v.to_string() << "\n";
  return report.feasible() ? 0 : 2;
}

int cmd_help() {
  std::cout <<
      "vdist_cli — Video Distribution Under Multiple Constraints\n\n"
      "  vdist_cli gen --kind cap|smd|mmd|iptv|small|tightness\n"
      "            [--streams N] [--users N] [--m M] [--mc MC] [--skew A]\n"
      "            [--decorrelate 1] [--seed S] [--out FILE]\n"
      "  vdist_cli stats FILE\n"
      "  vdist_cli solve FILE [--algo pipeline|greedy|enum|online|\n"
      "            threshold|exact] [--depth D] [--export 1]\n"
      "  vdist_cli eval FILE --assignment ASSIGNMENT_FILE\n\n"
      "'greedy'/'enum' require a unit-skew cap-form instance; 'exact' is\n"
      "for <= 62 streams. 'solve --export 1' writes the assignment to\n"
      "stdout in the text format of src/io/instance_io.h; 'eval' validates\n"
      "such a file against the instance (exit 2 if infeasible).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "eval") return cmd_eval(args);
    return cmd_help();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
