// vdist command-line tool: generate, inspect and solve MMD instances.
//
//   vdist_cli gen   --kind cap|smd|mmd|iptv|small|tightness [options] --out F
//   vdist_cli stats F
//   vdist_cli algos
//   vdist_cli solve F --algo NAME [algorithm options]
//
// Solving dispatches through the engine::SolverRegistry: every registered
// algorithm is available by name and unrecognized --key value pairs are
// forwarded to it as SolveOptions, so a new algorithm needs no CLI change.
// See `vdist_cli help` for every option. Instances use the text format of
// src/io/instance_io.h.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "engine/registry.h"
#include "gen/iptv.h"
#include "gen/random_instances.h"
#include "gen/small_streams.h"
#include "gen/tightness.h"
#include "io/instance_io.h"
#include "model/skew.h"
#include "model/validate.h"

namespace {

using namespace vdist;

struct Args {
  std::string command;
  std::string file;
  std::map<std::string, std::string> options;
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        args.options[key] = argv[++i];
      else
        args.options[key] = "1";
    } else {
      args.file = token;
    }
  }
  return args;
}

std::string opt(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

std::size_t opt_u(const Args& args, const std::string& key, std::size_t dflt) {
  return std::stoul(opt(args, key, std::to_string(dflt)));
}

int cmd_gen(const Args& args) {
  const std::string kind = opt(args, "kind", "mmd");
  const auto seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  model::Instance inst = [&]() -> model::Instance {
    if (kind == "cap") {
      gen::RandomCapConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.seed = seed;
      return gen::random_cap_instance(cfg);
    }
    if (kind == "smd") {
      gen::RandomSmdConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.target_skew = std::stod(opt(args, "skew", "8"));
      cfg.seed = seed;
      return gen::random_smd_instance(cfg);
    }
    if (kind == "mmd") {
      gen::RandomMmdConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 50);
      cfg.num_users = opt_u(args, "users", 20);
      cfg.num_server_measures = static_cast<int>(opt_u(args, "m", 2));
      cfg.num_user_measures = static_cast<int>(opt_u(args, "mc", 2));
      cfg.seed = seed;
      return gen::random_mmd_instance(cfg);
    }
    if (kind == "iptv") {
      gen::IptvConfig cfg;
      cfg.num_channels = opt_u(args, "streams", 150);
      cfg.num_users = opt_u(args, "users", 250);
      cfg.decorrelate_price = opt(args, "decorrelate", "0") == "1";
      cfg.seed = seed;
      return gen::make_iptv_workload(cfg).instance;
    }
    if (kind == "small") {
      gen::SmallStreamsConfig cfg;
      cfg.num_streams = opt_u(args, "streams", 150);
      cfg.num_users = opt_u(args, "users", 15);
      cfg.seed = seed;
      return gen::small_streams_instance(cfg).instance;
    }
    if (kind == "tightness") {
      gen::TightnessConfig cfg;
      cfg.m = static_cast<int>(opt_u(args, "m", 4));
      cfg.mc = static_cast<int>(opt_u(args, "mc", 4));
      return gen::tightness_instance(cfg);
    }
    throw std::runtime_error("unknown --kind " + kind);
  }();

  const std::string out = opt(args, "out", "");
  if (out.empty()) {
    io::save_instance(std::cout, inst);
  } else {
    io::save_instance_file(out, inst);
    std::cerr << "wrote " << out << " (" << inst.num_streams() << " streams, "
              << inst.num_users() << " users, " << inst.num_edges()
              << " interests)\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const model::LocalSkewInfo ls = model::local_skew(inst);
  const model::GlobalSkewInfo gs = model::global_skew(inst);
  std::cout << "streams:       " << inst.num_streams() << "\n"
            << "users:         " << inst.num_users() << "\n"
            << "interests:     " << inst.num_edges() << "\n"
            << "m (server):    " << inst.num_server_measures() << "\n"
            << "mc (user):     " << inst.num_user_measures() << "\n"
            << "input length:  " << inst.input_length() << "\n"
            << "unit skew:     " << (inst.is_unit_skew() ? "yes" : "no")
            << "\n"
            << "local skew a:  " << ls.alpha << "\n"
            << "global skew g: " << gs.gamma << "\n"
            << "mu:            " << gs.mu << "\n"
            << "small-streams: "
            << (model::satisfies_small_streams(inst, gs) ? "yes" : "no")
            << "\n"
            << "utility upper bound: " << inst.utility_upper_bound() << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);

  engine::SolveRequest req;
  req.instance = &inst;
  req.algorithm = opt(args, "algo", "pipeline");
  req.seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  try {
    req.time_budget_ms = std::stod(opt(args, "budget-ms", "0"));
  } catch (const std::exception&) {
    throw std::runtime_error("option --budget-ms expects a number, got '" +
                             opt(args, "budget-ms", "0") + "'");
  }
  // Every option the CLI does not consume itself belongs to the algorithm.
  for (const auto& [key, value] : args.options)
    if (key != "algo" && key != "seed" && key != "budget-ms" &&
        key != "export" && key != "verbose")
      req.options.set(key, value);

  const engine::SolveResult r = engine::solve(req);
  if (!r.ok) throw std::runtime_error(r.error);

  const model::Assignment& result = r.solution();
  std::cerr << "algo=" << r.algorithm << " objective=" << r.objective
            << " utility=" << r.raw_utility << " streams="
            << result.range_size() << " pairs=" << result.num_assigned_pairs()
            << " feasible=" << (r.feasible() ? "yes" : "NO");
  if (!r.variant.empty()) std::cerr << " variant=" << r.variant;
  std::cerr << " time_ms=" << r.wall_ms;
  if (r.timed_out) std::cerr << " TIMED-OUT";
  std::cerr << "\n";
  if (opt(args, "verbose", "0") == "1")
    for (const auto& [key, value] : r.stats)
      std::cerr << "  " << key << "=" << value << "\n";
  if (opt(args, "export", "0") == "1") io::save_assignment(std::cout, result);
  return 0;
}

int cmd_algos() {
  const engine::SolverRegistry& registry = engine::SolverRegistry::global();
  for (const std::string& name : registry.names()) {
    const engine::SolverInfo& info = registry.info(name);
    std::cout << name << "\n    " << info.description << "\n";
  }
  return 0;
}

int cmd_eval(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const std::string assignment_path = opt(args, "assignment", "");
  if (assignment_path.empty())
    throw std::runtime_error("eval requires --assignment FILE");
  std::ifstream is(assignment_path);
  if (!is) throw std::runtime_error("cannot open " + assignment_path);
  const model::Assignment a = io::load_assignment(is, inst);
  const auto report = model::validate(a);
  std::cout << "utility:   " << a.utility() << "\n"
            << "streams:   " << a.range_size() << "\n"
            << "pairs:     " << a.num_assigned_pairs() << "\n"
            << "feasible:  " << (report.feasible() ? "yes" : "NO") << "\n";
  for (const auto& v : report.violations)
    std::cout << "violation: " << v.to_string() << "\n";
  return report.feasible() ? 0 : 2;
}

int cmd_help() {
  std::cout <<
      "vdist_cli — Video Distribution Under Multiple Constraints\n\n"
      "  vdist_cli gen --kind cap|smd|mmd|iptv|small|tightness\n"
      "            [--streams N] [--users N] [--m M] [--mc MC] [--skew A]\n"
      "            [--decorrelate 1] [--seed S] [--out FILE]\n"
      "  vdist_cli stats FILE\n"
      "  vdist_cli algos\n"
      "  vdist_cli solve FILE --algo NAME [--seed S] [--budget-ms T]\n"
      "            [--verbose 1] [--export 1] [algorithm options]\n"
      "  vdist_cli eval FILE --assignment ASSIGNMENT_FILE\n\n"
      "'solve' dispatches through the solver registry: 'vdist_cli algos'\n"
      "lists every algorithm with its option keys, and unconsumed --key\n"
      "value pairs are forwarded to the algorithm (e.g. --depth 2 for\n"
      "enum, --order density for threshold). 'solve --export 1' writes\n"
      "the assignment to stdout in the text format of src/io/\n"
      "instance_io.h; 'eval' validates such a file against the instance\n"
      "(exit 2 if infeasible).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "algos") return cmd_algos();
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "eval") return cmd_eval(args);
    return cmd_help();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
