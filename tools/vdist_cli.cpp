// vdist command-line tool: generate, inspect, solve and sweep MMD
// instances.
//
//   vdist_cli gen --kind <scenario> [scenario params] [--seed S] [--out F]
//   vdist_cli scenarios
//   vdist_cli algos
//   vdist_cli stats F
//   vdist_cli solve F --algo NAME [algorithm options]
//   vdist_cli sweep --plan FILE | [sweep flags]   [--csv F] [--json F]
//   vdist_cli eval F --assignment FILE
//
// Workloads dispatch through the engine::ScenarioRegistry and algorithms
// through the engine::SolverRegistry, so a new generator or solver needs
// no CLI change: `scenarios` and `algos` list every registration with its
// declared parameters, `gen`/`solve` resolve names at runtime, and
// `sweep` runs a declarative scenario x algorithm x seed cross-product
// (engine/sweep.h) from flags or a plan file. Option keys are checked
// strictly against the registrations, so a typo'd flag is an error, not
// silence. Instances use the text format of src/io/instance_io.h.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dist/scheduler.h"
#include "dist/worker.h"
#include "engine/competitive.h"
#include "engine/perf.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/session.h"
#include "engine/sweep.h"
#include "gen/events.h"
#include "io/event_io.h"
#include "io/instance_io.h"
#include "model/skew.h"
#include "model/validate.h"
#include "util/float_cmp.h"
#include "util/json.h"
#include "workload/workload.h"

namespace {

using namespace vdist;

struct Args {
  std::string command;
  std::string file;
  std::map<std::string, std::string> options;
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        args.options[key] = argv[++i];
      else
        args.options[key] = "1";
    } else {
      args.file = token;
    }
  }
  return args;
}

std::string opt(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

std::size_t opt_u(const Args& args, const std::string& key, std::size_t dflt) {
  return std::stoul(opt(args, key, std::to_string(dflt)));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_gen(const Args& args) {
  engine::ScenarioSpec spec;
  spec.name = opt(args, "kind", "mmd");
  spec.seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  // Every option the CLI does not consume itself is a scenario param;
  // strict resolution rejects params the registration does not declare.
  for (const auto& [key, value] : args.options)
    if (key != "kind" && key != "seed" && key != "out")
      spec.params.set(key, value);
  const model::Instance inst = engine::build_scenario(spec);

  const std::string out = opt(args, "out", "");
  if (out.empty()) {
    io::save_instance(std::cout, inst);
  } else {
    io::save_instance_file(out, inst);
    std::cerr << "wrote " << out << " (" << inst.num_streams() << " streams, "
              << inst.num_users() << " users, " << inst.num_edges()
              << " interests)\n";
  }
  return 0;
}

int cmd_scenarios() {
  const engine::ScenarioRegistry& registry = engine::ScenarioRegistry::global();
  const workload::WorkloadRegistry& workloads =
      workload::WorkloadRegistry::global();
  for (const std::string& name : registry.names()) {
    const engine::ScenarioInfo& info = registry.info(name);
    std::cout << name << "\n    " << info.description << "\n";
    for (const engine::ScenarioParam& param : info.params) {
      std::cout << "      --" << param.key << " (default "
                << param.default_value << "): " << param.description << "\n";
      // A `trace` param nests the full declared workload surface (the
      // churn scenario forwards it to gen/events.h); surface every
      // nested key with its default so the whole workload is visible
      // from this one listing.
      if (param.key == "trace" && workloads.contains(name))
        for (const workload::WorkloadParam& wp :
             workloads.model(name).info().params)
          std::cout << "          trace:" << wp.key << " (default "
                    << wp.fallback << "): " << wp.description << "\n";
    }
  }
  std::cout << "every scenario also takes --seed (default 1)\n";
  std::cout << "\nevent-trace workload families (vdist_cli gen-events "
               "--family NAME,\nthe serve/compete --family option, and "
               "sweepable via the serve\nsolver's family option):\n";
  for (const std::string& name : workloads.names()) {
    const workload::WorkloadInfo& info = workloads.model(name).info();
    std::cout << name << "\n    " << info.description << "\n";
    for (const workload::WorkloadParam& param : info.params)
      std::cout << "      --" << param.key << " (default " << param.fallback
                << "): " << param.description << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const model::LocalSkewInfo ls = model::local_skew(inst);
  const model::GlobalSkewInfo gs = model::global_skew(inst);
  std::cout << "streams:       " << inst.num_streams() << "\n"
            << "users:         " << inst.num_users() << "\n"
            << "interests:     " << inst.num_edges() << "\n"
            << "m (server):    " << inst.num_server_measures() << "\n"
            << "mc (user):     " << inst.num_user_measures() << "\n"
            << "input length:  " << inst.input_length() << "\n"
            << "unit skew:     " << (inst.is_unit_skew() ? "yes" : "no")
            << "\n"
            << "local skew a:  " << ls.alpha << "\n"
            << "global skew g: " << gs.gamma << "\n"
            << "mu:            " << gs.mu << "\n"
            << "small-streams: "
            << (model::satisfies_small_streams(inst, gs) ? "yes" : "no")
            << "\n"
            << "utility upper bound: " << inst.utility_upper_bound() << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);

  engine::SolveRequest req;
  req.instance = &inst;
  req.algorithm = opt(args, "algo", "pipeline");
  req.seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  // Typo'd option keys are an error unless --strict 0.
  req.strict = opt(args, "strict", "1") == "1";
  try {
    req.time_budget_ms = std::stod(opt(args, "budget-ms", "0"));
  } catch (const std::exception&) {
    throw std::runtime_error("option --budget-ms expects a number, got '" +
                             opt(args, "budget-ms", "0") + "'");
  }
  // Every option the CLI does not consume itself belongs to the algorithm.
  for (const auto& [key, value] : args.options)
    if (key != "algo" && key != "seed" && key != "budget-ms" &&
        key != "export" && key != "verbose" && key != "strict")
      req.options.set(key, value);

  const engine::SolveResult r = engine::solve(req);
  if (!r.ok) throw std::runtime_error(r.error);

  const model::Assignment& result = r.solution();
  std::cerr << "algo=" << r.algorithm << " objective=" << r.objective
            << " utility=" << r.raw_utility << " streams="
            << result.range_size() << " pairs=" << result.num_assigned_pairs()
            << " feasible=" << (r.feasible() ? "yes" : "NO");
  if (!r.variant.empty()) std::cerr << " variant=" << r.variant;
  std::cerr << " time_ms=" << r.wall_ms;
  if (r.timed_out) std::cerr << " TIMED-OUT";
  std::cerr << "\n";
  if (opt(args, "verbose", "0") == "1")
    for (const auto& [key, value] : r.stats)
      std::cerr << "  " << key << "=" << value << "\n";
  if (opt(args, "export", "0") == "1") io::save_assignment(std::cout, result);
  return 0;
}

int cmd_algos() {
  const engine::SolverRegistry& registry = engine::SolverRegistry::global();
  for (const std::string& name : registry.names()) {
    const engine::SolverInfo& info = registry.info(name);
    std::cout << name << "\n    " << info.description << "\n";
  }
  return 0;
}

// Axis flag syntax: "key=v1,v2,v3[;key2=...]".
std::vector<engine::SweepAxis> parse_axes(const std::string& flag,
                                          const std::string& flag_name) {
  std::vector<engine::SweepAxis> axes;
  for (const std::string& part : split(flag, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::runtime_error("--" + flag_name +
                               " expects key=v1,v2,... got '" + part + "'");
    axes.push_back({part.substr(0, eq), split(part.substr(eq + 1), ',')});
  }
  return axes;
}

int cmd_sweep(const Args& args) {
  engine::SweepPlan plan;
  const std::string plan_path = opt(args, "plan", "");
  // Unlike solve (whose leftover flags go to the algorithm), sweep
  // consumes every flag itself — a typo'd flag must be an error, not a
  // silently different experiment, and plan-structure flags must not be
  // silently discarded when --plan already defines the structure.
  {
    const std::vector<std::string> common = {
        "plan",          "replicates", "seed",    "budget-ms",
        "threads",       "csv",        "json",    "strict",
        "workers",       "cache",      "list-cells", "deterministic",
        "shutdown-workers", "verbose"};
    const std::vector<std::string> structure = {"scenario", "set", "axis",
                                                "algos", "algo-axis"};
    for (const auto& [key, value] : args.options) {
      const bool is_common =
          std::find(common.begin(), common.end(), key) != common.end();
      const bool is_structure =
          std::find(structure.begin(), structure.end(), key) !=
          structure.end();
      if (!is_common && !is_structure)
        throw std::runtime_error("sweep does not take --" + key +
                                 " (see 'vdist_cli help')");
      if (is_structure && !plan_path.empty())
        throw std::runtime_error(
            "--" + key +
            " conflicts with --plan (the plan file defines the grid)");
    }
  }
  if (!plan_path.empty()) {
    plan = engine::parse_plan_file(plan_path);
  } else {
    engine::ScenarioSpec spec;
    spec.name = opt(args, "scenario", "");
    if (spec.name.empty())
      throw std::runtime_error(
          "sweep needs --plan FILE or at least --scenario NAME (see "
          "'vdist_cli help')");
    for (const std::string& kv : split(opt(args, "set", ""), ',')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0)
        throw std::runtime_error("--set expects key=value[,key=value...]");
      spec.params.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    plan.scenarios.push_back(std::move(spec));
    plan.scenario_axes = parse_axes(opt(args, "axis", ""), "axis");
    for (const std::string& name :
         split(opt(args, "algos", "pipeline"), ',')) {
      engine::AlgorithmSpec algo;
      algo.name = name;
      plan.algorithms.push_back(std::move(algo));
    }
    // "algo:key=v1,v2" attaches an axis to one named algorithm.
    for (const std::string& part : split(opt(args, "algo-axis", ""), ';')) {
      const std::size_t colon = part.find(':');
      if (colon == std::string::npos || colon == 0)
        throw std::runtime_error(
            "--algo-axis expects algo:key=v1,v2,... got '" + part + "'");
      const std::string target = part.substr(0, colon);
      bool found = false;
      for (engine::AlgorithmSpec& algo : plan.algorithms)
        if (algo.name == target) {
          const auto axes = parse_axes(part.substr(colon + 1), "algo-axis");
          algo.axes.insert(algo.axes.end(), axes.begin(), axes.end());
          found = true;
        }
      if (!found)
        throw std::runtime_error("--algo-axis names algorithm '" + target +
                                 "' which is not in --algos");
    }
  }
  if (args.options.count("replicates") != 0u)
    plan.replicates = static_cast<int>(opt_u(args, "replicates", 1));
  if (args.options.count("seed") != 0u)
    for (engine::ScenarioSpec& spec : plan.scenarios)
      spec.seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  if (args.options.count("budget-ms") != 0u)
    plan.time_budget_ms = std::stod(opt(args, "budget-ms", "0"));

  engine::SweepOptions options;
  options.batch.num_threads =
      static_cast<unsigned>(opt_u(args, "threads", 0));
  options.strict = opt(args, "strict", "0") == "1";
  options.deterministic = opt(args, "deterministic", "0") == "1";

  const std::string workers_path = opt(args, "workers", "");
  const std::string cache_dir = opt(args, "cache", "");

  // Dry run: expand the grid and key every cell without solving.
  if (opt(args, "list-cells", "0") == "1") {
    const std::vector<dist::CellStatus> rows =
        dist::list_cells(plan, options, cache_dir);
    std::size_t cached = 0;
    for (const dist::CellStatus& row : rows) {
      std::cout << (cache_dir.empty() ? "  -   "
                    : row.cached       ? "cached"
                                       : "miss  ")
                << "  " << row.key << "  " << row.scenario_label << " / "
                << row.algorithm_label << "\n";
      if (row.cached) ++cached;
    }
    std::cout << "list-cells: " << rows.size() << " cells";
    if (!cache_dir.empty())
      std::cout << ", " << cached << " cached in " << cache_dir;
    std::cout << "\n";
    return 0;
  }

  engine::SweepResult result;
  if (!workers_path.empty() || !cache_dir.empty()) {
    std::vector<dist::WorkerSpec> workers;
    if (!workers_path.empty())
      workers = dist::parse_worker_file(workers_path);
    dist::DistOptions dopt;
    dopt.cache_dir = cache_dir;
    dopt.local_threads = options.batch.num_threads;
    dopt.shutdown_workers = opt(args, "shutdown-workers", "0") == "1";
    dopt.log = opt(args, "verbose", "0") == "1";
    dist::DistStats stats;
    result = dist::run_distributed_sweep(plan, workers, options, dopt,
                                         &stats);
    std::cerr << "dist: cells=" << stats.cells << " cached=" << stats.cached
              << " executed=" << stats.executed
              << " retried=" << stats.retried
              << " workers=" << stats.workers << "\n";
  } else {
    result = engine::run_sweep(plan, options);
  }

  const std::string csv_path = opt(args, "csv", "");
  const std::string json_path = opt(args, "json", "");
  auto emit = [&](const std::string& path, auto writer) {
    if (path == "-") {
      writer(std::cout);
      return;
    }
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path);
    writer(os);
    std::cerr << "wrote " << path << "\n";
  };
  if (!csv_path.empty())
    emit(csv_path, [&](std::ostream& os) { engine::write_csv(os, result); });
  if (!json_path.empty())
    emit(json_path, [&](std::ostream& os) { engine::write_json(os, result); });
  if (csv_path != "-" && json_path != "-")
    engine::summary_table(result).print_aligned(
        std::cout, "sweep: " + std::to_string(result.num_scenario_cells) +
                       " scenario cells x " +
                       std::to_string(result.num_algorithm_cells) +
                       " algorithm cells x " +
                       std::to_string(result.replicates) + " replicates");

  const std::string error = result.first_error();
  if (!error.empty()) {
    std::cerr << "sweep had failing runs; first: " << error << "\n";
    return 2;
  }
  return 0;
}

// A distributed-sweep worker process: listens for a scheduler, solves
// the cells it is assigned, exits on the scheduler's shutdown message.
int cmd_worker(const Args& args) {
  {
    const std::vector<std::string> known = {"port", "capacity"};
    for (const auto& [key, value] : args.options)
      if (std::find(known.begin(), known.end(), key) == known.end())
        throw std::runtime_error("worker does not take --" + key +
                                 " (see 'vdist_cli help')");
  }
  dist::WorkerOptions options;
  options.port = static_cast<std::uint16_t>(opt_u(args, "port", 0));
  options.capacity = static_cast<unsigned>(opt_u(args, "capacity", 0));
  return dist::run_worker(options);
}

// Draws a deterministic event trace over an instance and writes it in
// the event text format — the input of `vdist_cli serve --events` and
// `vdist_cli compete --events`. --family selects any workload-registry
// adversary; the flags are that family's declared params.
int cmd_gen_events(const Args& args) {
  const std::string family = opt(args, "family", "churn");
  const workload::WorkloadRegistry& registry =
      workload::WorkloadRegistry::global();
  const workload::WorkloadModel& wmodel = registry.model(family);
  // Flags are the family's declared params — for churn, the same surface
  // the churn scenario's `trace` param and the serve solver's --trace
  // option share — plus --out/--family. A typo'd flag must be an error,
  // not a silently different trace.
  {
    std::vector<std::string> known = {"out", "family"};
    for (const workload::WorkloadParam& param : wmodel.info().params)
      known.emplace_back(param.key);
    for (const auto& [key, value] : args.options)
      if (std::find(known.begin(), known.end(), key) == known.end())
        throw std::runtime_error("gen-events does not take --" + key +
                                 " under --family " + family +
                                 " (see 'vdist_cli scenarios')");
  }
  const model::Instance inst = io::load_instance_file(args.file);
  std::map<std::string, std::string> overrides;
  for (const auto& [key, value] : args.options)
    if (key != "out" && key != "family") overrides[key] = value;
  const workload::Params params = registry.resolve(family, overrides);
  const std::vector<model::InstanceEvent> trace =
      wmodel.generate(inst, params);
  // The reproduction handle: every declared key at its resolved value.
  std::cerr << "gen-events: " << workload::workload_param_line(wmodel, params)
            << "\n";
  const std::string out = opt(args, "out", "");
  if (out.empty()) {
    io::save_events(std::cout, trace);
  } else {
    io::save_events_file(out, trace);
    std::cerr << "wrote " << out << " (" << trace.size() << " events)\n";
  }
  return 0;
}

// Replays an event trace through a make_backend() serving backend
// (engine::Session, or engine::ShardedSession under --shards N) and
// reports objective-over-time as JSON. --check N compares the backend
// against a from-scratch solve every N events: the resolve policy must
// match the fresh objective bit-exactly, the repair policy must stay
// within --bound; a violation exits 4.
int cmd_serve(const Args& args) {
  // Flags are ServeConfig's declared keys — minus the registry-only
  // trace-derivation knobs (events here names the event FILE; trace and
  // family are meaningless when one is given) — plus check/json.
  {
    std::vector<std::string> known = {"events", "check", "json"};
    for (const engine::ServeOptionSpec& spec :
         engine::ServeConfig::declared()) {
      const std::string key = spec.key;
      if (key != "events" && key != "trace" && key != "family")
        known.push_back(key);
    }
    for (const auto& [key, value] : args.options)
      if (std::find(known.begin(), known.end(), key) == known.end())
        throw std::runtime_error("serve does not take --" + key +
                                 " (see 'vdist_cli help')");
  }
  const model::Instance inst = io::load_instance_file(args.file);
  const std::string events_path = opt(args, "events", "");
  if (events_path.empty())
    throw std::runtime_error("serve requires --events FILE");
  const std::vector<model::InstanceEvent> trace =
      io::load_events_file(events_path);

  // One typed config, one validator: the same ServeConfig::from_options
  // the registry's `serve` adapter and sweep plan lines go through, so a
  // bad value is rejected with the same message everywhere.
  engine::SolveOptions raw;
  for (const auto& [key, value] : args.options)
    if (key != "events" && key != "check" && key != "json")
      raw.set(key, value);
  engine::ServeConfig cfg = engine::ServeConfig::from_options(raw);
  const std::size_t check_every = opt_u(args, "check", 0);
  // The repair bound is guaranteed at the backend's own drift
  // checkpoints; align them with the external gate so every checked
  // prefix has had its chance to self-correct. A refresh interval that
  // divides the check interval already lands a self-correction on every
  // gated event; anything else is replaced by the check interval itself.
  if (check_every > 0 && cfg.policy == engine::ServePolicy::kRepair) {
    const auto check_int = static_cast<int>(check_every);
    if (cfg.refresh <= 0 || check_int % cfg.refresh != 0)
      cfg.refresh = check_int;
  }

  const std::unique_ptr<engine::ServingBackend> backend =
      engine::make_backend(inst, cfg);
  std::ostringstream timeline;
  timeline.precision(17);
  bool parity_failed = false;
  std::size_t applied = 0;
  for (const model::InstanceEvent& event : trace) {
    const engine::RepairStats stats = backend->apply(event);
    ++applied;
    if (applied > 1) timeline << ',';
    timeline << "{\"event\":" << applied << ",\"objective\":"
             << stats.objective << ",\"wall_ms\":" << stats.wall_ms
             << ",\"action\":\""
             << (stats.action == engine::RepairAction::kLocalRepair
                     ? "repair"
                     : stats.action == engine::RepairAction::kFullResolve
                           ? "resolve"
                           : "online")
             << "\"}";
    // The differential anchor: bake the current world into a standalone
    // instance and solve it from scratch (ServingBackend::check_parity).
    if (check_every > 0 && applied % check_every == 0) {
      const engine::ParityReport parity = backend->check_parity();
      if (!parity.ok) {
        parity_failed = true;
        std::cerr << "serve: parity violated after event " << applied
                  << " (" << parity.detail << ")\n";
        break;
      }
    }
  }
  // Feasibility is judged against the world the backend actually serves:
  // the assignment's pairs re-accounted on the baked snapshot (caps and
  // utilities as of now, not as of the parent instance).
  const model::Instance snapshot = backend->snapshot();
  model::Assignment snapshot_assignment(snapshot);
  for (std::size_t u = 0; u < snapshot.num_users(); ++u)
    for (const model::StreamId s :
         backend->assignment().streams_of(static_cast<model::UserId>(u)))
      snapshot_assignment.assign(static_cast<model::UserId>(u), s);
  // The online policy never revokes commitments, so a capacity decrease
  // can legitimately leave user caps exceeded on the current world —
  // only a server-budget violation is a bug there; the greedy policies
  // must be exactly feasible.
  const auto report = model::validate(snapshot_assignment);
  const bool feasibility_ok =
      cfg.policy == engine::ServePolicy::kOnline ? report.server_feasible()
                                                 : report.feasible();
  if (check_every > 0 && !feasibility_ok) {
    parity_failed = true;
    std::cerr << "serve: backend assignment is infeasible\n";
  }

  const engine::SessionCounters& counters = backend->counters();
  std::ostringstream doc;
  doc.precision(17);
  doc << "{\"serve\":\"" << engine::to_string(cfg.policy)
      << "\",\"shards\":" << backend->num_shards()
      << ",\"events\":" << counters.events
      << ",\"objective\":" << backend->objective()
      << ",\"variant\":\"" << backend->variant()
      << "\",\"local_repairs\":" << counters.local_repairs
      << ",\"full_resolves\":" << counters.full_resolves
      << ",\"drift_checks\":" << counters.drift_checks
      << ",\"feasible\":" << (report.feasible() ? "true" : "false")
      << ",\"timeline\":[" << timeline.str() << "]}\n";
  const std::string json_path = opt(args, "json", "-");
  if (json_path == "-") {
    std::cout << doc.str();
  } else {
    std::ofstream os(json_path);
    if (!os) throw std::runtime_error("cannot open " + json_path);
    os << doc.str();
    std::cerr << "wrote " << json_path << "\n";
  }
  std::cerr << "serve: policy=" << engine::to_string(cfg.policy)
            << " shards=" << backend->num_shards()
            << " events=" << counters.events
            << " objective=" << backend->objective()
            << " repairs=" << counters.local_repairs
            << " resolves=" << counters.full_resolves << "\n";
  return parity_failed ? 4 : 0;
}

// Online-vs-offline competitive-ratio measurement (engine/competitive.h):
// replays a trace through a serving backend and solves the offline
// optimum on every checkpoint prefix's materialized snapshot. --min-ratio
// gates the worst per-prefix ratio (exit 5 on violation) — the CI hook
// for "the online policies stay within their empirical guarantees on the
// committed adversarial traces".
int cmd_compete(const Args& args) {
  // Flags are ServeConfig's declared backend keys plus the harness's own
  // surface. The trace comes from --events FILE, or is derived
  // deterministically from --family/--trace/--seed exactly as the serve
  // solver does it.
  {
    std::vector<std::string> known = {"events", "family", "trace",  "seed",
                                      "every",  "offline", "min-ratio",
                                      "csv",    "json"};
    for (const engine::ServeOptionSpec& spec :
         engine::ServeConfig::declared()) {
      const std::string key = spec.key;
      if (key != "events" && key != "trace" && key != "family")
        known.push_back(key);
    }
    for (const auto& [key, value] : args.options)
      if (std::find(known.begin(), known.end(), key) == known.end())
        throw std::runtime_error("compete does not take --" + key +
                                 " (see 'vdist_cli help')");
  }
  // Parse the gate up front: a partial parse ("0.9x") must be an error,
  // not a silently different gate.
  double min_ratio = 0.0;
  {
    const std::string raw = opt(args, "min-ratio", "0");
    std::size_t used = 0;
    try {
      min_ratio = std::stod(raw, &used);
    } catch (const std::exception&) {
      used = std::string::npos;
    }
    if (used != raw.size() || !(min_ratio >= 0.0))
      throw std::runtime_error("compete --min-ratio expects a non-negative "
                               "number, got '" + raw + "'");
  }

  const model::Instance inst = io::load_instance_file(args.file);
  const std::string events_path = opt(args, "events", "");
  const std::string family = opt(args, "family", "churn");
  std::vector<model::InstanceEvent> trace;
  if (!events_path.empty()) {
    if (args.options.count("family") || args.options.count("trace") ||
        args.options.count("seed"))
      throw std::runtime_error(
          "compete takes either --events FILE or --family/--trace/--seed, "
          "not both");
    trace = io::load_events_file(events_path);
  } else {
    // The same derivation path the serve solver's family/trace options
    // take, so a sweep cell and a compete run on equal flags replay the
    // identical trace.
    std::map<std::string, std::string> wparams;
    wparams["seed"] = std::to_string(opt_u(args, "seed", 1));
    workload::apply_workload_overrides(wparams, opt(args, "trace", ""));
    trace = workload::WorkloadRegistry::global().generate(family, inst,
                                                          wparams);
  }

  engine::SolveOptions raw;
  for (const auto& [key, value] : args.options)
    if (key != "events" && key != "family" && key != "trace" &&
        key != "seed" && key != "every" && key != "offline" &&
        key != "min-ratio" && key != "csv" && key != "json")
      raw.set(key, value);
  engine::CompetitiveOptions opts;
  opts.serve = engine::ServeConfig::from_options(raw);
  opts.every = opt_u(args, "every", 0);
  opts.offline = opt(args, "offline", "");
  const engine::CompetitiveReport report =
      engine::run_competitive(inst, trace, opts);

  const std::string csv_path = opt(args, "csv", "");
  const std::string json_path = opt(args, "json", "");
  const auto emit = [&](const std::string& path, auto writer,
                        const char* what) {
    if (path == "-") {
      writer(std::cout);
    } else {
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot open " + path);
      writer(os);
      std::cerr << "wrote " << what << " " << path << "\n";
    }
  };
  if (!csv_path.empty())
    emit(csv_path,
         [&](std::ostream& os) { engine::write_competitive_csv(os, report); },
         "csv");
  if (!json_path.empty())
    emit(json_path,
         [&](std::ostream& os) { engine::write_competitive_json(os, report); },
         "json");
  if (csv_path != "-" && json_path != "-")
    engine::competitive_table(report).print_aligned(
        std::cout, "compete " + report.policy + " vs offline " +
                       report.offline_algorithm);
  std::cerr << "compete: policy=" << report.policy
            << " offline=" << report.offline_algorithm
            << " shards=" << report.shards
            << " events=" << report.counters.events
            << " checkpoints=" << report.checkpoints.size()
            << " min_ratio=" << util::format_double(report.min_ratio, 6)
            << " mean_ratio=" << util::format_double(report.mean_ratio, 6)
            << " final_ratio=" << util::format_double(report.final_ratio, 6)
            << "\n";
  if (min_ratio > 0.0 && report.min_ratio < min_ratio) {
    std::cerr << "compete: min ratio "
              << util::format_double(report.min_ratio, 9) << " violates gate "
              << util::format_double(min_ratio, 9) << "\n";
    return 5;
  }
  return 0;
}

int cmd_perf(const Args& args) {
  // Like sweep, perf consumes every flag itself: a typo'd flag must be an
  // error, not a silently different benchmark.
  {
    const std::vector<std::string> known = {
        "smoke", "out",      "reps",        "seed",
        "min-speedup", "baseline", "max-regress", "regress-metric",
        "filter", "threads"};
    for (const auto& [key, value] : args.options)
      if (std::find(known.begin(), known.end(), key) == known.end())
        throw std::runtime_error("perf does not take --" + key +
                                 " (see 'vdist_cli help')");
  }
  // Validate the gate thresholds before spending minutes benchmarking: a
  // partial parse ("2x") must be an error, not a silently different gate.
  const auto parse_gate = [&](const char* key, const char* dflt) {
    const std::string raw = opt(args, key, dflt);
    double value = 0.0;
    std::size_t parsed = 0;
    try {
      value = std::stod(raw, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != raw.size())
      throw std::runtime_error(std::string("option --") + key +
                               " expects a number, got '" + raw + "'");
    return value;
  };
  const double min_speedup = parse_gate("min-speedup", "1");
  const double max_regress = parse_gate("max-regress", "2");
  // Which ratios the baseline gate inspects: `evals` is deterministic
  // and machine-independent (CI compares against a BENCH produced on
  // different hardware); `wall` only makes sense on comparable machines.
  const std::string regress_metric = opt(args, "regress-metric", "both");
  if (regress_metric != "both" && regress_metric != "wall" &&
      regress_metric != "evals")
    throw std::runtime_error(
        "option --regress-metric expects both|wall|evals, got '" +
        regress_metric + "'");
  const bool gate_wall = regress_metric != "evals";
  const bool gate_evals = regress_metric != "wall";
  const std::string baseline_path = opt(args, "baseline", "");
  // Parse (and validate) the baseline before benchmarking too: a wrong
  // file must fail in milliseconds, not after the full suite ran.
  std::optional<util::JsonValue> baseline;
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path);
    if (!is) throw std::runtime_error("cannot open " + baseline_path);
    baseline = util::parse_json(is);
    if (baseline->string_or("bench", "") != "perf")
      throw std::runtime_error(
          baseline_path +
          " is not a BENCH perf document (missing \"bench\":\"perf\")");
  }

  engine::PerfOptions options;
  options.smoke = opt(args, "smoke", "0") == "1";
  options.repetitions = static_cast<int>(opt_u(args, "reps", 0));
  options.seed = static_cast<std::uint64_t>(opt_u(args, "seed", 1));
  options.filter = opt(args, "filter", "");
  options.threads = static_cast<int>(opt_u(args, "threads", 1));
  if (options.threads < 1)
    throw std::runtime_error("option --threads expects a count >= 1");
  const engine::PerfReport report = engine::run_perf(options);
  if (!options.filter.empty() && report.cases.empty())
    throw std::runtime_error("perf --filter '" + options.filter +
                             "' matches no case label");

  const std::string out_path = opt(args, "out", "BENCH_perf.json");
  // Like sweep's '-' emitters: keep stdout machine-parseable when the
  // JSON goes there, printing the table only otherwise.
  if (out_path != "-")
    engine::perf_table(report).print_aligned(
        std::cout, std::string("perf: selection kernel, ") +
                       (report.smoke ? "smoke sizes" : "full sizes"));
  if (out_path == "-") {
    engine::write_perf_json(std::cout, report);
  } else {
    std::ofstream os(out_path);
    if (!os) throw std::runtime_error("cannot open " + out_path);
    engine::write_perf_json(os, report);
    std::cerr << "wrote " << out_path << "\n";
  }

  const std::string error = report.first_error();
  if (!error.empty()) {
    std::cerr << "perf had failing runs; first: " << error << "\n";
    return 2;
  }
  for (const engine::PerfCase& c : report.cases)
    if (!c.objective_match) {
      std::cerr << "perf: selection strategies disagree on the objective of "
                << c.label << " — selection kernel bug\n";
      return 3;
    }
  // The CI gate: the delta kernel must beat the naive scan on the largest
  // case by at least --min-speedup (default 1; 0 disables).
  const engine::PerfCase* largest = report.largest();
  if (min_speedup > 0.0 && largest != nullptr &&
      largest->speedup < min_speedup) {
    std::cerr << "perf: delta kernel speedup " << largest->speedup << " on "
              << largest->label << " is below the required " << min_speedup
              << "\n";
    return 3;
  }
  // The regression gate: diff wall/evals against the committed baseline
  // JSON per matching label; any ratio past --max-regress fails.
  if (baseline.has_value()) {
    const engine::PerfBaselineDiff diff =
        engine::diff_perf_baseline(report, *baseline);
    if (out_path != "-")
      engine::baseline_table(diff).print_aligned(
          std::cout, "perf vs baseline " + baseline_path +
                         " (gate: ratio <= " + std::to_string(max_regress) +
                         ")");
    for (const std::string& label : diff.only_current)
      std::cerr << "perf: case " << label << " has no baseline entry\n";
    if (diff.regressed(max_regress, gate_wall, gate_evals)) {
      const engine::PerfBaselineEntry* worst = diff.worst();
      std::cerr << "perf: regression past --max-regress " << max_regress;
      if (worst != nullptr)
        std::cerr << " (worst wall ratio " << worst->wall_ratio << " on "
                  << worst->label << ")";
      std::cerr << "\n";
      return 3;
    }
  }
  return 0;
}

int cmd_eval(const Args& args) {
  const model::Instance inst = io::load_instance_file(args.file);
  const std::string assignment_path = opt(args, "assignment", "");
  if (assignment_path.empty())
    throw std::runtime_error("eval requires --assignment FILE");
  std::ifstream is(assignment_path);
  if (!is) throw std::runtime_error("cannot open " + assignment_path);
  const model::Assignment a = io::load_assignment(is, inst);
  const auto report = model::validate(a);
  std::cout << "utility:   " << a.utility() << "\n"
            << "streams:   " << a.range_size() << "\n"
            << "pairs:     " << a.num_assigned_pairs() << "\n"
            << "feasible:  " << (report.feasible() ? "yes" : "NO") << "\n";
  for (const auto& v : report.violations)
    std::cout << "violation: " << v.to_string() << "\n";
  return report.feasible() ? 0 : 2;
}

int cmd_help(std::ostream& os) {
  os <<
      "vdist_cli — Video Distribution Under Multiple Constraints\n\n"
      "  vdist_cli gen --kind SCENARIO [scenario params] [--seed S]\n"
      "            [--out FILE]\n"
      "  vdist_cli gen-events FILE [--family NAME] [family params]\n"
      "            [--out FILE]\n"
      "  vdist_cli scenarios\n"
      "  vdist_cli algos\n"
      "  vdist_cli stats FILE\n"
      "  vdist_cli solve FILE --algo NAME [--seed S] [--budget-ms T]\n"
      "            [--verbose 1] [--export 1] [--strict 0] [algo options]\n"
      "  vdist_cli serve FILE --events EVENTS_FILE\n"
      "            [--policy repair|resolve|online] [--bound X]\n"
      "            [--refresh N] [--mode M] [--select S] [--mu X]\n"
      "            [--guard 0|1] [--shards N] [--queue N] [--check N]\n"
      "            [--json FILE|-]\n"
      "  vdist_cli compete FILE (--events EVENTS_FILE |\n"
      "            [--family NAME] [--trace k=v,...] [--seed S])\n"
      "            [serve backend flags] [--every N] [--offline ALGO]\n"
      "            [--min-ratio X] [--csv FILE|-] [--json FILE|-]\n"
      "  vdist_cli sweep --plan FILE | --scenario NAME [--set k=v,...]\n"
      "            [--axis k=v1,v2[;k2=...]] [--algos a,b,c]\n"
      "            [--algo-axis algo:k=v1,v2[;...]] [--replicates N]\n"
      "            [--seed S] [--threads N] [--csv FILE|-] [--json FILE|-]\n"
      "            [--workers FILE] [--cache DIR] [--deterministic 1]\n"
      "            [--list-cells 1] [--shutdown-workers 1] [--verbose 1]\n"
      "  vdist_cli worker [--port P] [--capacity N]\n"
      "  vdist_cli perf [--smoke 1] [--out FILE|-] [--reps N] [--seed S]\n"
      "            [--filter SUBSTR] [--threads N] [--min-speedup X]\n"
      "            [--baseline FILE] [--max-regress R]\n"
      "            [--regress-metric both|wall|evals]\n"
      "  vdist_cli eval FILE --assignment ASSIGNMENT_FILE\n\n"
      "'gen' resolves --kind through the scenario registry ('vdist_cli\n"
      "scenarios' lists every workload family with its declared params)\n"
      "and 'solve' through the solver registry ('vdist_cli algos');\n"
      "unconsumed --key value pairs go to the scenario/algorithm and are\n"
      "checked against its declared keys (disable with --strict 0 on\n"
      "solve). 'sweep' expands a scenario x algorithm x seed cross-\n"
      "product from a plan file or flags, runs it on a thread pool, and\n"
      "prints per-cell aggregates (mean/min/max objective, gap vs the\n"
      "utility upper bound, wall time); --csv/--json write the table for\n"
      "plotting ('-' = stdout). With --workers FILE (lines: HOST PORT\n"
      "[CAPACITY]) the grid cells are dispatched to 'vdist_cli worker'\n"
      "processes with capacity-aware fan-out and retry on worker death;\n"
      "--cache DIR recalls cells from a content-addressed result cache\n"
      "keyed on the cell's parameters and the build's git SHA (works\n"
      "without --workers too); --deterministic 1 zeroes wall-clock fields\n"
      "so the merged CSV/JSON is byte-identical across runs and\n"
      "executors; --list-cells 1 prints each cell's cache key and status\n"
      "without solving; --shutdown-workers 1 tells surviving workers to\n"
      "exit afterwards. 'gen-events' draws a deterministic event trace\n"
      "(joins, leaves, stream add/remove, capacity and utility moves)\n"
      "over an instance; --family selects a workload-registry adversary\n"
      "(churn, zipf-drift, flash-crowd, diurnal, hetero-cap — 'vdist_cli\n"
      "scenarios' lists each family's declared params, shared verbatim\n"
      "with the corresponding scenario's and the serve solver's 'trace'\n"
      "option). 'serve'\n"
      "replays such a trace through the ServingBackend API\n"
      "(engine/serving.h) under one of three repair policies and emits\n"
      "objective-over-time JSON; --shards N (> 1) serves through the\n"
      "sharded engine — N overlay replicas, worker threads and bounded\n"
      "queues behind the same API, bit-identical objectives under\n"
      "--policy resolve. With --check N the backend is compared against\n"
      "a from-scratch solve every N events (resolve must match\n"
      "bit-exactly, repair must stay within --bound; exit 4 on\n"
      "violation). 'compete' replays a trace (from --events FILE, or\n"
      "derived via --family/--trace/--seed) through the same backend and\n"
      "solves the OFFLINE optimum on every --every N checkpoint prefix's\n"
      "materialized snapshot, reporting per-prefix online/offline/ratio\n"
      "rows plus min/mean/final aggregates; --offline picks the reference\n"
      "algorithm (default: the mode-matched greedy, under which resolve's\n"
      "ratio is 1.0 bit-exactly), --min-ratio X gates the worst prefix\n"
      "(exit 5 on violation). 'perf' benchmarks the selection-kernel\n"
      "strategies (delta/lazy/naive) on scaling registered scenarios and\n"
      "writes BENCH_perf.json with build provenance (exit 3 when the\n"
      "objectives diverge, the largest case's delta-vs-naive speedup\n"
      "falls below --min-speedup, or — with --baseline FILE — any\n"
      "matching case's wall or evals ratio against the committed BENCH\n"
      "JSON exceeds --max-regress, default 2); --filter SUBSTR runs the\n"
      "matching subset of case labels. 'solve\n"
      "--export 1' writes the assignment to stdout in the text format of\n"
      "src/io/instance_io.h; 'eval' validates such a file against the\n"
      "instance (exit 2 if infeasible).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "gen-events") return cmd_gen_events(args);
    if (args.command == "scenarios") return cmd_scenarios();
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "algos") return cmd_algos();
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "compete") return cmd_compete(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "worker") return cmd_worker(args);
    if (args.command == "perf") return cmd_perf(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command.empty() || args.command == "help" ||
        args.command == "--help" || args.command == "-h")
      return cmd_help(std::cout);
    // An unrecognized subcommand must not silently look like success.
    std::cerr << "error: unknown command '" << args.command << "'\n\n";
    cmd_help(std::cerr);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
