// E3 — Theorems 2.9/2.10: Sviridenko partial enumeration. Sweeps the
// enumeration depth (0 = plain fixed greedy ... 3 = the proven e/(e-1)
// configuration) and reports quality vs. the exact optimum and running
// time — the polynomial-but-steep trade-off the paper accepts for the
// better constant.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header("E3",
                      "partial enumeration reaches 2e/(e-1) feasible "
                      "(Thm 2.10); deeper seeds = better quality, more time");
  util::Table table({"seed-depth", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "mean candidates", "mean ms"});
  const int kRuns = bench::runs(8);
  const auto depths = bench::full_or_smoke<std::vector<int>>({0, 1, 2, 3},
                                                             {0, 2, 3});
  for (int depth : depths) {
    bench::RatioStats ratio;
    util::RunningStats candidates;
    util::RunningStats ms;
    std::uint64_t seed = 3000;
    for (int run = 0; run < kRuns; ++run) {
      gen::RandomCapConfig cfg;
      cfg.num_streams = 11;
      cfg.num_users = 6;
      cfg.budget_fraction = 0.4;
      cfg.cap_fraction = 0.5;
      cfg.seed = seed++;
      const model::Instance inst = gen::random_cap_instance(cfg);
      const double opt =
          bench::expect_ok(engine::solve(bench::request(inst, "exact")))
              .objective;
      const engine::SolveResult r = bench::expect_ok(engine::solve(
          bench::request(inst, "enum",
                         engine::SolveOptions().set("depth", depth))));
      ms.add(r.wall_ms);
      ratio.add(opt, r.objective);
      candidates.add(r.stat("candidates"));
    }
    table.row()
        .add(depth)
        .add(kRuns)
        .add(ratio.mean(), 4)
        .add(ratio.worst(), 4)
        .add(candidates.mean(), 0)
        .add(ms.mean(), 2);
  }
  table.print_aligned(std::cout, "E3: enumeration depth vs quality/time");
  bench::print_footer(
      "quality improves monotonically with depth; time grows ~|S|^depth");
}

}  // namespace

int main() {
  run();
  return 0;
}
