// E3 — Theorems 2.9/2.10: Sviridenko partial enumeration. Sweeps the
// enumeration depth (0 = plain fixed greedy ... 3 = the proven e/(e-1)
// configuration) as an algorithm-option axis and reports quality vs. the
// exact optimum and running time — the polynomial-but-steep trade-off
// the paper accepts for the better constant.
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header("E3",
                      "partial enumeration reaches 2e/(e-1) feasible "
                      "(Thm 2.10); deeper seeds = better quality, more time");

  const auto depths = bench::full_or_smoke<std::vector<int>>({0, 1, 2, 3},
                                                             {0, 2, 3});
  engine::SweepPlan plan;
  plan.scenarios = {{.name = "cap",
                     .params = engine::SolveOptions()
                                   .set("streams", 11)
                                   .set("users", 6)
                                   .set("budget-fraction", 0.4)
                                   .set("cap-fraction", 0.5),
                     .seed = 3000}};
  engine::AlgorithmSpec enumerated;
  enumerated.name = "enum";
  enumerated.axes = {{"depth", bench::axis_values(depths)}};
  plan.algorithms = {{.name = "exact"}, enumerated};
  plan.replicates = bench::runs(8);
  const engine::SweepResult result = engine::run_sweep(plan);
  bench::die_on_error(result);

  util::Table table({"seed-depth", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "mean candidates", "mean ms"});
  const engine::SweepCell& exact = result.cell(0, 0);
  for (std::size_t d = 0; d < depths.size(); ++d) {
    const engine::SweepCell& cell = result.cell(0, 1 + d);
    const bench::RatioStats ratio = bench::paired_ratio(exact, cell);
    table.row()
        .add(depths[d])
        .add(cell.runs.size())
        .add(ratio.mean(), 4)
        .add(ratio.worst(), 4)
        .add(cell.mean_stat("candidates"), 0)
        .add(cell.wall_ms.mean(), 2);
  }
  table.print_aligned(std::cout, "E3: enumeration depth vs quality/time");
  bench::print_footer(
      "quality improves monotonically with depth; time grows ~|S|^depth");
}

}  // namespace

int main() {
  run();
  return 0;
}
