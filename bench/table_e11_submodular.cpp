// E11 — the §4 closing remark: the multi-budget reduction maximizes ANY
// nonnegative nondecreasing submodular function under m knapsack
// constraints with an O(m) factor. Demonstrated on weighted coverage
// (the classic submodular benchmark), with exhaustive optimum as ground
// truth on small universes.
//
// This harness runs on coverage oracles, not model::Instance workloads,
// so it sits outside the scenario/sweep API (which sweeps instances
// through registered solvers) — the m x runs loop here is over a
// different problem domain by design.
#include <iostream>

#include "bench_common.h"
#include "core/submodular.h"
#include "util/rng.h"

namespace {

using namespace vdist;

struct CoverageProblem {
  core::CoverageOracle oracle;
  std::vector<std::vector<double>> costs;  // m x items
  std::vector<double> budgets;
  int items;
};

CoverageProblem make_problem(int items, int elements, std::size_t m,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < items; ++i)
    for (int e = 0; e < elements; ++e)
      if (rng.bernoulli(0.25)) pairs.emplace_back(i, e);
  std::vector<double> weights(elements);
  for (auto& w : weights) w = rng.uniform(0.5, 5.0);
  std::vector<std::vector<double>> costs(m, std::vector<double>(items));
  std::vector<double> budgets(m);
  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (auto& c : costs[i]) {
      c = rng.uniform(0.5, 2.5);
      total += c;
    }
    budgets[i] = 0.45 * total;
  }
  return CoverageProblem{
      core::CoverageOracle(items, elements, pairs, weights), std::move(costs),
      std::move(budgets), items};
}

// Exhaustive optimum over item subsets respecting every budget.
double exact_coverage(CoverageProblem& p) {
  double best = 0.0;
  const auto n = static_cast<std::uint32_t>(p.items);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (std::size_t i = 0; i < p.budgets.size() && ok; ++i) {
      double used = 0.0;
      for (std::uint32_t x = 0; x < n; ++x)
        if (mask >> x & 1) used += p.costs[i][x];
      ok = used <= p.budgets[i] * (1 + 1e-12);
    }
    if (!ok) continue;
    p.oracle.reset();
    for (std::uint32_t x = 0; x < n; ++x)
      if (mask >> x & 1) p.oracle.add(static_cast<int>(x));
    best = std::max(best, p.oracle.value());
  }
  return best;
}

void run() {
  bench::print_header(
      "E11", "submodular maximization under m budgets, O(m) factor "
             "(§4 closing remark)");
  util::Table table({"m", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "mean OPT/ALG (enum)", "O(m) scale"});
  const int kRuns = bench::runs(8);
  const int kItems = bench::full_or_smoke(14, 10);
  const auto measures = bench::full_or_smoke<std::vector<std::size_t>>(
      {1, 2, 3, 4, 6}, {1, 2});
  std::uint64_t seed = 8000;
  for (std::size_t m : measures) {
    bench::RatioStats greedy_ratio;
    bench::RatioStats enum_ratio;
    for (int run = 0; run < kRuns; ++run) {
      CoverageProblem p = make_problem(kItems, 40, m, seed++);
      const double opt = exact_coverage(p);
      const core::SubmodularResult alg =
          core::multi_budget_submodular(p.oracle, p.costs, p.budgets);
      greedy_ratio.add(opt, alg.value);
      const core::SubmodularResult enumd = core::multi_budget_submodular(
          p.oracle, p.costs, p.budgets, /*use_partial_enum=*/true);
      enum_ratio.add(opt, enumd.value);
    }
    table.row()
        .add(m)
        .add(kRuns)
        .add(greedy_ratio.mean(), 3)
        .add(greedy_ratio.worst(), 3)
        .add(enum_ratio.mean(), 3)
        .add(static_cast<double>(m), 0);
  }
  table.print_aligned(std::cout, "E11: coverage under m knapsacks");
  bench::print_footer(
      "measured ratio grows sub-linearly in m, consistent with O(m)");
}

}  // namespace

int main() {
  run();
  return 0;
}
