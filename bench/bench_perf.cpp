// Experiment PERF: the selection-kernel trajectory.
//
// claim: the lazy max-heap selection kernel (core/select.h) is equivalent
// to the naive O(|S|) rescan pick-for-pick, and asymptotically faster —
// at the suite's largest SMD workload it must be >= 2x faster with the
// identical objective. Full runs rewrite BENCH_perf.json at the working
// directory (the repo root keeps the committed trajectory); smoke runs
// only print, so bench-smoke cannot clobber the committed numbers.
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "engine/perf.h"

int main() {
  using namespace vdist;

  bench::print_header("PERF",
                      "lazy selection kernel == naive scan pick-for-pick, "
                      ">= 2x faster at the largest SMD size");

  engine::PerfOptions opts;
  opts.smoke = bench::smoke_mode();
  const engine::PerfReport report = engine::run_perf(opts);

  const std::string error = report.first_error();
  if (!error.empty()) {
    std::cerr << "bench: perf suite failed: " << error << "\n";
    return 1;
  }

  engine::perf_table(report).print_aligned(std::cout, "selection kernel");

  if (!opts.smoke) {
    const char* path = "BENCH_perf.json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot open " << path << "\n";
      return 1;
    }
    engine::write_perf_json(os, report);
    std::cout << "wrote " << path << "\n";
  }

  bool all_match = true;
  for (const engine::PerfCase& c : report.cases)
    all_match = all_match && c.objective_match;
  const engine::PerfCase* largest = report.largest();
  const bool fast_enough =
      largest != nullptr && (opts.smoke ? largest->speedup >= 1.0
                                        : largest->speedup >= 2.0);
  bench::print_footer(
      all_match && fast_enough
          ? "PASS: objectives identical, lazy kernel fast enough"
          : "FAIL: kernel mismatch or insufficient speedup");
  return all_match && fast_enough ? 0 : 1;
}
