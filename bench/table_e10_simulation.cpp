// E10 — the dynamic setting (Section 5, footnote 1): stream sessions with
// finite durations arrive over time; the policy decides online and is
// informed of departures. The discrete-event simulator replays the same
// trace against every policy and reports the utility-time integral,
// acceptance, utilization and ground-truth constraint violations.
//
// The head-end workload comes from the scenario registry; the policies
// are sim::Policy objects driven by the simulator, not engine solvers,
// so this harness compares policy *processes*, not solver requests — the
// one experiment shape the SweepPlan API intentionally does not cover.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "gen/trace.h"
#include "model/skew.h"
#include "sim/engine.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E10", "online admission over a day of session churn (sim)");

  engine::ScenarioSpec spec;
  spec.name = "iptv";
  spec.params
      .set("streams",
           static_cast<int>(bench::full_or_smoke<std::size_t>(120, 40)))
      .set("users",
           static_cast<int>(bench::full_or_smoke<std::size_t>(250, 60)))
      .set("bandwidth-fraction", 0.25);
  spec.seed = 11;
  const model::Instance instance = engine::build_scenario(spec);

  gen::TraceConfig tcfg;
  tcfg.arrival_rate = 2.0;
  tcfg.mean_duration = 45.0;
  tcfg.horizon = bench::full_or_smoke(1000.0, 120.0);
  tcfg.popularity_bias = 1.0;
  tcfg.seed = 17;
  const auto trace = gen::make_trace(instance, tcfg);

  const double mu = model::global_skew(instance).mu;

  util::Table table({"policy", "utility-time", "vs best", "accept%",
                     "mean bw util%", "peak bw util%", "violations"});
  struct Entry {
    std::string name;
    sim::SimResult result;
  };
  std::vector<Entry> entries;

  {
    sim::OnlineAllocatePolicy policy(instance, mu, true);
    entries.push_back(
        {"allocate (mu from gamma)", run_simulation(instance, trace, policy)});
  }
  {
    sim::OnlineAllocatePolicy policy(instance, 8.0, true);
    entries.push_back(
        {"allocate (mu=8)", run_simulation(instance, trace, policy)});
  }
  {
    sim::ThresholdPolicy policy(instance);
    entries.push_back(
        {"threshold (fill)", run_simulation(instance, trace, policy)});
  }
  {
    sim::ThresholdPolicy policy(instance, 0.85, 0.85);
    entries.push_back(
        {"threshold (85% margin)", run_simulation(instance, trace, policy)});
  }
  {
    sim::RandomPolicy policy(instance, 0.5, 31);
    entries.push_back(
        {"random p=0.5", run_simulation(instance, trace, policy)});
  }

  double best = 0.0;
  for (const Entry& e : entries)
    best = std::max(best, e.result.totals.utility_time);
  for (const Entry& e : entries) {
    const sim::SimTotals& t = e.result.totals;
    table.row()
        .add(e.name)
        .add(t.utility_time, 0)
        .add(t.utility_time / best, 3)
        .add(100.0 * static_cast<double>(t.accepted) /
                 static_cast<double>(std::max<std::size_t>(t.sessions, 1)),
             1)
        .add(100.0 * t.mean_utilization[0], 1)
        .add(100.0 * t.peak_utilization[0], 1)
        .add(t.violations);
  }
  table.print_aligned(std::cout, "E10: simulated session churn");
  std::cout << "trace: " << trace.size() << " sessions over "
            << util::format_double(tcfg.horizon, 0) << " time units; mu = "
            << util::format_double(mu, 0) << "\n";
  bench::print_footer(
      "zero ground-truth violations for every policy; utility-aware "
      "admission clears the naive baselines");
}

}  // namespace

int main() {
  run();
  return 0;
}
