// E13 (extension) — variant selection under the at-most-one-per-group
// constraint (the group-budget variant of budgeted coverage the paper
// cites as related work [Chekuri-Kumar], §1.2). Each logical channel is
// offered as SD/HD/UHD encodings; the head-end may carry at most one.
// Reports constrained vs. unconstrained utility (an upper bound) and how
// the selection splits across quality classes.
//
// This harness keeps gen::make_iptv_workload rather than the scenario
// registry: the group constraint needs the workload's side data (channel
// classes, variant groups), which the registry's Instance-only contract
// does not carry, and core::solve_with_groups is likewise outside the
// solver registry for the same reason. The loops below are over workload
// configs, not a scenario x algorithm x seed sweep.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/group_select.h"
#include "gen/iptv.h"
#include "model/validate.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E13", "variant selection: at most one encoding per channel "
             "(group constraint, related work [6])");
  util::Table table({"variants", "bw frac", "constrained util",
                     "unconstrained util", "retention", "SD", "HD", "UHD",
                     "constraint ok"});
  const auto variant_counts =
      bench::full_or_smoke<std::vector<int>>({2, 3}, {2});
  const auto bw_fractions =
      bench::full_or_smoke<std::vector<double>>({0.2, 0.4}, {0.2});
  for (int variants : variant_counts) {
    for (double bw : bw_fractions) {
      gen::IptvConfig cfg;
      cfg.num_channels = bench::full_or_smoke<std::size_t>(180, 60);
      cfg.num_users = bench::full_or_smoke<std::size_t>(200, 60);
      cfg.variants_per_channel = variants;
      cfg.bandwidth_fraction = bw;
      cfg.seed = 77;
      const gen::IptvWorkload w = gen::make_iptv_workload(cfg);

      // Group selection layers a side constraint (the variant groups) the
      // engine's Instance-only request cannot carry; it stays on its own
      // API while the unconstrained reference goes through the registry.
      const core::GroupSelectResult constrained =
          core::solve_with_groups(w.instance, w.variant_group);
      engine::SolveRequest req;
      req.instance = &w.instance;
      req.algorithm = "pipeline";
      const engine::SolveResult unconstrained = engine::solve(req);
      if (!unconstrained.ok) {
        std::cerr << "bench: pipeline failed: " << unconstrained.error << "\n";
        std::exit(1);
      }

      int sd = 0, hd = 0, uhd = 0;
      for (model::StreamId s : constrained.assignment.range()) {
        switch (w.channels[static_cast<std::size_t>(s)].klass) {
          case gen::ChannelClass::kSd: ++sd; break;
          case gen::ChannelClass::kHd: ++hd; break;
          case gen::ChannelClass::kUhd: ++uhd; break;
        }
      }
      const bool ok = core::satisfies_group_constraint(
                          constrained.assignment, w.variant_group) &&
                      model::validate(constrained.assignment).feasible();
      table.row()
          .add(variants)
          .add(bw, 2)
          .add(constrained.utility, 1)
          .add(unconstrained.objective, 1)
          .add(constrained.utility / unconstrained.objective, 3)
          .add(sd)
          .add(hd)
          .add(uhd)
          .add(ok ? "yes" : "NO");
    }
  }
  table.print_aligned(std::cout, "E13: encoding selection per channel");
  bench::print_footer(
      "tight bandwidth pushes the lineup toward SD encodings; looser "
      "budgets buy HD/UHD upgrades — the group constraint costs little "
      "total utility");
}

}  // namespace

int main() {
  run();
  return 0;
}
