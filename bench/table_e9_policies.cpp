// E9 — the paper's motivating comparison (§1): utility-aware allocation
// vs. the threshold-based admission control "most solutions in use today
// employ". On the synthetic IPTV workload the Theorem 1.1 pipeline and
// the online Allocate are compared against FCFS/utility-sorted/density-
// sorted/random threshold admission.
//
// Every policy is an engine registry entry, so the comparison is a table
// of (label, algorithm, options) rows — adding a policy is one line.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/iptv.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E9", "utility-aware policies beat threshold admission (paper §1)");
  util::Table table({"policy", "utility", "vs best", "streams carried",
                     "bw util%", "feasible"});

  // Adversarial regime from the paper's introduction: channel prices are
  // decorrelated from bitrates, so per-cost utilities vary wildly and
  // cost-blind admission pays for it.
  gen::IptvConfig cfg;
  cfg.num_channels = bench::full_or_smoke<std::size_t>(250, 60);
  cfg.num_users = bench::full_or_smoke<std::size_t>(400, 80);
  cfg.bandwidth_fraction = 0.3;
  cfg.decorrelate_price = true;
  cfg.seed = 2024;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const model::Instance& inst = w.instance;

  struct Policy {
    std::string label;
    std::string algorithm;
    engine::SolveOptions options;
    std::uint64_t seed = 1;
  };
  const std::vector<Policy> policies = {
      {"mmd-solver (Thm 1.1)", "pipeline", {}},
      {"allocate (online, Thm 5.4)", "online", {}},
      {"threshold FCFS", "fcfs", {}},
      {"threshold FCFS (adversarial arrival)", "threshold",
       engine::SolveOptions().set("order", "density-asc")},
      {"threshold by-utility", "threshold",
       engine::SolveOptions().set("order", "utility")},
      {"threshold by-density", "threshold",
       engine::SolveOptions().set("order", "density")},
      {"random order", "random", {}, 99},
      {"threshold 90% margin", "threshold",
       engine::SolveOptions()
           .set("server-margin", "0.9")
           .set("user-margin", "0.9")},
  };

  std::vector<engine::SolveResult> results;
  for (const Policy& p : policies) {
    engine::SolveRequest req = bench::request(inst, p.algorithm, p.options);
    req.seed = p.seed;
    results.push_back(bench::expect_ok(engine::solve(req)));
  }

  double best = 0.0;
  for (const engine::SolveResult& r : results)
    best = std::max(best, r.raw_utility);
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const engine::SolveResult& r = results[i];
    const model::Assignment& a = r.solution();
    table.row()
        .add(policies[i].label)
        .add(r.raw_utility, 1)
        .add(r.raw_utility / best, 3)
        .add(a.range_size())
        .add(100.0 * a.server_cost(0) / inst.budget(0), 1)
        .add(r.feasible() ? "yes" : "NO");
  }

  table.print_aligned(std::cout, "E9: policy comparison on IPTV workload");
  std::cout << "catalog: " << inst.num_streams() << " channels, "
            << inst.num_users() << " users, " << inst.num_edges()
            << " interests (seed " << cfg.seed << ")\n";
  bench::print_footer(
      "the utility-aware solver leads; blind FCFS/random trail it");
}

}  // namespace

int main() {
  run();
  return 0;
}
