// E9 — the paper's motivating comparison (§1): utility-aware allocation
// vs. the threshold-based admission control "most solutions in use today
// employ". On the synthetic IPTV workload the Theorem 1.1 pipeline and
// the online Allocate are compared against FCFS/utility-sorted/density-
// sorted/random threshold admission.
#include <iostream>

#include "baseline/policies.h"
#include "bench_common.h"
#include "core/allocate_online.h"
#include "core/mmd_solver.h"
#include "gen/iptv.h"
#include "model/validate.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E9", "utility-aware policies beat threshold admission (paper §1)");
  util::Table table({"policy", "utility", "vs best", "streams carried",
                     "bw util%", "feasible"});

  // Adversarial regime from the paper's introduction: channel prices are
  // decorrelated from bitrates, so per-cost utilities vary wildly and
  // cost-blind admission pays for it.
  gen::IptvConfig cfg;
  cfg.num_channels = 250;
  cfg.num_users = 400;
  cfg.bandwidth_fraction = 0.3;
  cfg.decorrelate_price = true;
  cfg.seed = 2024;
  const gen::IptvWorkload w = gen::make_iptv_workload(cfg);
  const model::Instance& inst = w.instance;

  struct Row {
    std::string name;
    double utility;
    std::size_t carried;
    double bw_util;
    bool feasible;
  };
  std::vector<Row> rows;

  auto add_assignment = [&](const std::string& name,
                            const model::Assignment& a) {
    rows.push_back(Row{name, a.utility(), a.range_size(),
                       100.0 * a.server_cost(0) / inst.budget(0),
                       model::validate(a).feasible()});
  };

  const core::MmdSolveResult solver = core::solve_mmd(inst);
  add_assignment("mmd-solver (Thm 1.1)", solver.assignment);

  const core::AllocateResult online = core::allocate_online(inst);
  add_assignment("allocate (online, Thm 5.4)", online.assignment);

  baseline::ThresholdOptions fcfs;
  add_assignment("threshold FCFS", baseline::threshold_admission(inst, fcfs).assignment);

  baseline::ThresholdOptions adversarial;
  adversarial.order = baseline::StreamOrder::kDensityAsc;
  add_assignment("threshold FCFS (adversarial arrival)",
                 baseline::threshold_admission(inst, adversarial).assignment);

  baseline::ThresholdOptions by_utility;
  by_utility.order = baseline::StreamOrder::kUtilityDesc;
  add_assignment("threshold by-utility",
                 baseline::threshold_admission(inst, by_utility).assignment);

  baseline::ThresholdOptions by_density;
  by_density.order = baseline::StreamOrder::kDensityDesc;
  add_assignment("threshold by-density",
                 baseline::threshold_admission(inst, by_density).assignment);

  add_assignment("random order",
                 baseline::random_admission(inst, 99).assignment);

  baseline::ThresholdOptions margin;
  margin.server_margin = 0.9;
  margin.user_margin = 0.9;
  add_assignment("threshold 90% margin",
                 baseline::threshold_admission(inst, margin).assignment);

  double best = 0.0;
  for (const Row& r : rows) best = std::max(best, r.utility);
  for (const Row& r : rows)
    table.row()
        .add(r.name)
        .add(r.utility, 1)
        .add(r.utility / best, 3)
        .add(r.carried)
        .add(r.bw_util, 1)
        .add(r.feasible ? "yes" : "NO");

  table.print_aligned(std::cout, "E9: policy comparison on IPTV workload");
  std::cout << "catalog: " << inst.num_streams() << " channels, "
            << inst.num_users() << " users, " << inst.num_edges()
            << " interests (seed " << cfg.seed << ")\n";
  bench::print_footer(
      "the utility-aware solver leads; blind FCFS/random trail it");
}

}  // namespace

int main() {
  run();
  return 0;
}
