// E9 — the paper's motivating comparison (§1): utility-aware allocation
// vs. the threshold-based admission control "most solutions in use today
// employ". On the synthetic IPTV workload the Theorem 1.1 pipeline and
// the online Allocate are compared against FCFS/utility-sorted/density-
// sorted/random threshold admission.
//
// Every policy is an algorithm cell of a one-scenario SweepPlan — adding
// a policy is one AlgorithmSpec line.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E9", "utility-aware policies beat threshold admission (paper §1)");

  // Adversarial regime from the paper's introduction: channel prices are
  // decorrelated from bitrates, so per-cost utilities vary wildly and
  // cost-blind admission pays for it.
  engine::SweepPlan plan;
  plan.scenarios = {
      {.name = "iptv",
       .params =
           engine::SolveOptions()
               .set("streams",
                    static_cast<int>(bench::full_or_smoke<std::size_t>(250, 60)))
               .set("users",
                    static_cast<int>(bench::full_or_smoke<std::size_t>(400, 80)))
               .set("bandwidth-fraction", 0.3)
               .set("decorrelate", 1),
       .seed = 2024}};
  plan.algorithms = {
      {.name = "pipeline", .options = {}, .axes = {},
       .label = "mmd-solver (Thm 1.1)"},
      {.name = "online", .options = {}, .axes = {},
       .label = "allocate (online, Thm 5.4)"},
      {.name = "fcfs", .options = {}, .axes = {}, .label = "threshold FCFS"},
      {.name = "threshold",
       .options = engine::SolveOptions().set("order", "density-asc"),
       .axes = {},
       .label = "threshold FCFS (adversarial arrival)"},
      {.name = "threshold",
       .options = engine::SolveOptions().set("order", "utility"),
       .axes = {},
       .label = "threshold by-utility"},
      {.name = "threshold",
       .options = engine::SolveOptions().set("order", "density"),
       .axes = {},
       .label = "threshold by-density"},
      {.name = "random", .options = {}, .axes = {}, .label = "random order"},
      {.name = "threshold",
       .options = engine::SolveOptions()
                      .set("server-margin", "0.9")
                      .set("user-margin", "0.9"),
       .axes = {},
       .label = "threshold 90% margin"}};
  plan.replicates = 1;
  engine::SweepOptions options;
  options.keep_assignments = true;  // bandwidth utilization reads them
  options.keep_instances = true;
  const engine::SweepResult result = engine::run_sweep(plan, options);
  bench::die_on_error(result);

  const model::Instance& inst = result.instance(0, 0);
  double best = 0.0;
  for (std::size_t ac = 0; ac < result.num_algorithm_cells; ++ac)
    best = std::max(best, result.cell(0, ac).runs[0].raw_utility);

  util::Table table({"policy", "utility", "vs best", "streams carried",
                     "bw util%", "feasible"});
  for (std::size_t ac = 0; ac < result.num_algorithm_cells; ++ac) {
    const engine::SweepCell& cell = result.cell(0, ac);
    const engine::RunRecord& run = cell.runs[0];
    const model::Assignment& a = *run.assignment;
    table.row()
        .add(cell.algorithm_label)
        .add(run.raw_utility, 1)
        .add(run.raw_utility / best, 3)
        .add(a.range_size())
        .add(100.0 * a.server_cost(0) / inst.budget(0), 1)
        .add(run.feasible ? "yes" : "NO");
  }

  table.print_aligned(std::cout, "E9: policy comparison on IPTV workload");
  std::cout << "catalog: " << inst.num_streams() << " channels, "
            << inst.num_users() << " users, " << inst.num_edges()
            << " interests (seed " << plan.scenarios[0].seed << ")\n";
  bench::print_footer(
      "the utility-aware solver leads; blind FCFS/random trail it");
}

}  // namespace

int main() {
  run();
  return 0;
}
