// E1 — Theorem 2.8 / Lemma 2.2: the fixed greedy is a feasible
// 3e/(e-1) ~ 4.75 approximation for unit-skew SMD; in practice the ratio
// is far smaller. Sweeps instance sizes and budget/cap tightness, and
// reports the plain greedy alongside to show the value of the fix.
//
// Per configuration the (exact, greedy-plain, greedy) solves for all runs
// go through one engine::BatchRunner, which fans them out across a thread
// pool with deterministic seeding.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E1",
      "fixed greedy >= OPT*(e-1)/3e on unit-skew SMD (Thm 2.8); feasible");
  const double bound = 3.0 * bench::kE / (bench::kE - 1.0);

  util::Table table({"|S|", "|U|", "B-frac", "W-frac", "runs",
                     "ratio(greedy)", "ratio(fixed) mean", "ratio(fixed) max",
                     "bound", "feasible"});
  const int kRuns = bench::runs(12);
  const auto stream_sizes =
      bench::full_or_smoke<std::vector<std::size_t>>({8, 12, 16}, {8});
  const auto user_sizes =
      bench::full_or_smoke<std::vector<std::size_t>>({4, 10}, {4});
  std::uint64_t seed = 1;
  for (std::size_t streams : stream_sizes) {
    for (std::size_t users : user_sizes) {
      for (double bf : {0.25, 0.5}) {
        const double cf = 0.5;
        // Generate the run instances, then batch every solve of the cell.
        std::vector<model::Instance> instances;
        instances.reserve(static_cast<std::size_t>(kRuns));
        for (int run = 0; run < kRuns; ++run) {
          gen::RandomCapConfig cfg;
          cfg.num_streams = streams;
          cfg.num_users = users;
          cfg.budget_fraction = bf;
          cfg.cap_fraction = cf;
          cfg.seed = seed++;
          instances.push_back(gen::random_cap_instance(cfg));
        }
        std::vector<engine::SolveRequest> requests;
        for (const model::Instance& inst : instances)
          for (const char* algo : {"exact", "greedy-plain", "greedy"})
            requests.push_back(bench::request(inst, algo));
        const std::vector<engine::SolveResult> results =
            engine::solve_batch(requests);

        bench::RatioStats plain;
        bench::RatioStats fixed;
        bool all_feasible = true;
        for (std::size_t i = 0; i < results.size(); i += 3) {
          const double opt = bench::expect_ok(results[i]).objective;
          const engine::SolveResult& g = bench::expect_ok(results[i + 1]);
          const engine::SolveResult& f = bench::expect_ok(results[i + 2]);
          plain.add(opt, g.objective);
          fixed.add(opt, f.objective);
          all_feasible &= f.feasible();
        }
        table.row()
            .add(streams)
            .add(users)
            .add(bf, 2)
            .add(cf, 2)
            .add(kRuns)
            .add(plain.mean(), 3)
            .add(fixed.mean(), 3)
            .add(fixed.worst(), 3)
            .add(bound, 3)
            .add(all_feasible ? "yes" : "NO");
      }
    }
  }
  table.print_aligned(std::cout, "E1: empirical OPT/ALG, unit-skew SMD");
  bench::print_footer(
      "fixed-greedy worst-case ratio stays well below the 4.746 bound");
}

}  // namespace

int main() {
  run();
  return 0;
}
