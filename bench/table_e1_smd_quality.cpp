// E1 — Theorem 2.8 / Lemma 2.2: the fixed greedy is a feasible
// 3e/(e-1) ~ 4.75 approximation for unit-skew SMD; in practice the ratio
// is far smaller. Sweeps instance sizes and budget/cap tightness, and
// reports the plain greedy alongside to show the value of the fix.
//
// The whole experiment is one declarative SweepPlan: scenario axes over
// |S|, |U| and the budget fraction, three algorithm cells and the seed
// replicates; engine::run_sweep fans the cross-product out across a
// thread pool with deterministic seeding.
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E1",
      "fixed greedy >= OPT*(e-1)/3e on unit-skew SMD (Thm 2.8); feasible");
  const double bound = 3.0 * bench::kE / (bench::kE - 1.0);

  engine::SweepPlan plan;
  plan.scenarios = {{.name = "cap",
                     .params = engine::SolveOptions().set("cap-fraction", 0.5),
                     .seed = 1}};
  plan.scenario_axes = {
      {"streams", bench::axis_values(bench::full_or_smoke<
                      std::vector<std::size_t>>({8, 12, 16}, {8}))},
      {"users", bench::axis_values(
                    bench::full_or_smoke<std::vector<std::size_t>>({4, 10},
                                                                   {4}))},
      {"budget-fraction", {"0.25", "0.5"}}};
  plan.algorithms = {{.name = "exact"},
                     {.name = "greedy-plain"},
                     {.name = "greedy"}};
  plan.replicates = bench::runs(12);
  const engine::SweepResult result = engine::run_sweep(plan);
  bench::die_on_error(result);

  util::Table table({"|S|", "|U|", "B-frac", "W-frac", "runs",
                     "ratio(greedy)", "ratio(fixed) mean", "ratio(fixed) max",
                     "bound", "feasible"});
  for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
    const engine::SweepCell& exact = result.cell(sc, 0);
    const engine::SweepCell& plain = result.cell(sc, 1);
    const engine::SweepCell& fixed = result.cell(sc, 2);
    const bench::RatioStats plain_ratio = bench::paired_ratio(exact, plain);
    const bench::RatioStats fixed_ratio = bench::paired_ratio(exact, fixed);
    table.row()
        .add(exact.scenario.params.get("streams", ""))
        .add(exact.scenario.params.get("users", ""))
        .add(exact.scenario.params.get("budget-fraction", ""))
        .add(exact.scenario.params.get("cap-fraction", ""))
        .add(static_cast<std::size_t>(plan.replicates))
        .add(plain_ratio.mean(), 3)
        .add(fixed_ratio.mean(), 3)
        .add(fixed_ratio.worst(), 3)
        .add(bound, 3)
        .add(fixed.feasible_count == fixed.runs.size() ? "yes" : "NO");
  }
  table.print_aligned(std::cout, "E1: empirical OPT/ALG, unit-skew SMD");
  bench::print_footer(
      "fixed-greedy worst-case ratio stays well below the 4.746 bound");
}

}  // namespace

int main() {
  run();
  return 0;
}
