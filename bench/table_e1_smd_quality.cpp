// E1 — Theorem 2.8 / Lemma 2.2: the fixed greedy is a feasible
// 3e/(e-1) ~ 4.75 approximation for unit-skew SMD; in practice the ratio
// is far smaller. Sweeps instance sizes and budget/cap tightness, and
// reports the plain greedy alongside to show the value of the fix.
#include <iostream>

#include "bench_common.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "gen/random_instances.h"
#include "model/validate.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E1",
      "fixed greedy >= OPT*(e-1)/3e on unit-skew SMD (Thm 2.8); feasible");
  const double bound = 3.0 * bench::kE / (bench::kE - 1.0);

  util::Table table({"|S|", "|U|", "B-frac", "W-frac", "runs",
                     "ratio(greedy)", "ratio(fixed) mean", "ratio(fixed) max",
                     "bound", "feasible"});
  constexpr int kRuns = 12;
  std::uint64_t seed = 1;
  for (std::size_t streams : {8u, 12u, 16u}) {
    for (std::size_t users : {4u, 10u}) {
      for (double bf : {0.25, 0.5}) {
        const double cf = 0.5;
        bench::RatioStats plain;
        bench::RatioStats fixed;
        bool all_feasible = true;
        for (int run = 0; run < kRuns; ++run) {
          gen::RandomCapConfig cfg;
          cfg.num_streams = streams;
          cfg.num_users = users;
          cfg.budget_fraction = bf;
          cfg.cap_fraction = cf;
          cfg.seed = seed++;
          const model::Instance inst = gen::random_cap_instance(cfg);
          const core::ExactResult opt = core::solve_exact(inst);
          const core::GreedyResult g = core::greedy_unit_skew(inst);
          const core::SmdSolveResult f =
              core::solve_unit_skew(inst, core::SmdMode::kFeasible);
          plain.add(opt.utility, g.capped_utility);
          fixed.add(opt.utility, f.utility);
          all_feasible &= model::validate(f.assignment).feasible();
        }
        table.row()
            .add(streams)
            .add(users)
            .add(bf, 2)
            .add(cf, 2)
            .add(kRuns)
            .add(plain.mean(), 3)
            .add(fixed.mean(), 3)
            .add(fixed.worst(), 3)
            .add(bound, 3)
            .add(all_feasible ? "yes" : "NO");
      }
    }
  }
  table.print_aligned(std::cout, "E1: empirical OPT/ALG, unit-skew SMD");
  bench::print_footer(
      "fixed-greedy worst-case ratio stays well below the 4.746 bound");
}

}  // namespace

int main() {
  run();
  return 0;
}
