// E5 — Theorem 4.4: the full pipeline is an O(m*mc*log(2*alpha*mc))
// approximation. Sweeps m x mc on random MMD instances and reports the
// measured ratio next to the concrete theorem factor — who wins and how
// the loss scales with m*mc is the shape being regenerated.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E5", "MMD ratio scales with m*mc (Thm 4.4), measured vs bound");
  util::Table table({"m", "mc", "m*mc", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "bound (2m-1)(2mc-1)*2t*3e/(e-1)", "feasible"});
  const int kRuns = bench::runs(6);
  const auto ms = bench::full_or_smoke<std::vector<int>>({1, 2, 4, 8}, {1, 2});
  const auto mcs = bench::full_or_smoke<std::vector<int>>({1, 2, 4}, {1, 2});
  std::uint64_t seed = 5000;
  for (int m : ms) {
    for (int mc : mcs) {
      // All of the cell's instances first, then one batch over the
      // (pipeline, exact) pairs.
      std::vector<model::Instance> instances;
      for (int run = 0; run < kRuns; ++run) {
        gen::RandomMmdConfig cfg;
        cfg.num_streams = 10;
        cfg.num_users = 5;
        cfg.num_server_measures = m;
        cfg.num_user_measures = mc;
        cfg.budget_fraction = 0.4;
        cfg.capacity_fraction = 0.5;
        cfg.seed = seed++;
        instances.push_back(gen::random_mmd_instance(cfg));
      }
      std::vector<engine::SolveRequest> requests;
      for (const model::Instance& inst : instances) {
        requests.push_back(bench::request(inst, "pipeline"));
        requests.push_back(bench::request(inst, "exact"));
      }
      const std::vector<engine::SolveResult> results =
          engine::solve_batch(requests);

      bench::RatioStats ratio;
      int bands = 1;
      bool all_feasible = true;
      for (std::size_t i = 0; i < results.size(); i += 2) {
        const engine::SolveResult& alg = bench::expect_ok(results[i]);
        const engine::SolveResult& opt = bench::expect_ok(results[i + 1]);
        ratio.add(opt.objective, alg.objective);
        bands = std::max(bands, static_cast<int>(alg.stat("num_bands")));
        all_feasible &= alg.feasible();
      }
      const double bound = (2.0 * m - 1) * (2.0 * mc - 1) * 2.0 * bands *
                           3.0 * bench::kE / (bench::kE - 1.0);
      table.row()
          .add(m)
          .add(mc)
          .add(m * mc)
          .add(kRuns)
          .add(ratio.mean(), 3)
          .add(ratio.worst(), 3)
          .add(bound, 1)
          .add(all_feasible ? "yes" : "NO");
    }
  }
  table.print_aligned(std::cout, "E5: ratio vs (m, mc)");
  bench::print_footer(
      "measured loss grows mildly with m*mc, far inside the proven factor");
}

}  // namespace

int main() {
  run();
  return 0;
}
