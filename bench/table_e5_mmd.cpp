// E5 — Theorem 4.4: the full pipeline is an O(m*mc*log(2*alpha*mc))
// approximation. Sweeps m x mc on random MMD instances and reports the
// measured ratio next to the concrete theorem factor — who wins and how
// the loss scales with m*mc is the shape being regenerated.
#include <iostream>

#include "bench_common.h"
#include "core/exact.h"
#include "core/mmd_solver.h"
#include "gen/random_instances.h"
#include "model/validate.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E5", "MMD ratio scales with m*mc (Thm 4.4), measured vs bound");
  util::Table table({"m", "mc", "m*mc", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "bound (2m-1)(2mc-1)*2t*3e/(e-1)", "feasible"});
  constexpr int kRuns = 6;
  std::uint64_t seed = 5000;
  for (int m : {1, 2, 4, 8}) {
    for (int mc : {1, 2, 4}) {
      bench::RatioStats ratio;
      int bands = 1;
      bool all_feasible = true;
      for (int run = 0; run < kRuns; ++run) {
        gen::RandomMmdConfig cfg;
        cfg.num_streams = 10;
        cfg.num_users = 5;
        cfg.num_server_measures = m;
        cfg.num_user_measures = mc;
        cfg.budget_fraction = 0.4;
        cfg.capacity_fraction = 0.5;
        cfg.seed = seed++;
        const model::Instance inst = gen::random_mmd_instance(cfg);
        const core::MmdSolveResult alg = core::solve_mmd(inst);
        const core::ExactResult opt = core::solve_exact(inst);
        ratio.add(opt.utility, alg.utility);
        bands = std::max(bands, alg.num_bands);
        all_feasible &= model::validate(alg.assignment).feasible();
      }
      const double bound = (2.0 * m - 1) * (2.0 * mc - 1) * 2.0 * bands *
                           3.0 * bench::kE / (bench::kE - 1.0);
      table.row()
          .add(m)
          .add(mc)
          .add(m * mc)
          .add(kRuns)
          .add(ratio.mean(), 3)
          .add(ratio.worst(), 3)
          .add(bound, 1)
          .add(all_feasible ? "yes" : "NO");
    }
  }
  table.print_aligned(std::cout, "E5: ratio vs (m, mc)");
  bench::print_footer(
      "measured loss grows mildly with m*mc, far inside the proven factor");
}

}  // namespace

int main() {
  run();
  return 0;
}
