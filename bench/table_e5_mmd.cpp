// E5 — Theorem 4.4: the full pipeline is an O(m*mc*log(2*alpha*mc))
// approximation. Sweeps m x mc (two scenario axes) on random MMD
// instances and reports the measured ratio next to the concrete theorem
// factor — who wins and how the loss scales with m*mc is the shape being
// regenerated.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E5", "MMD ratio scales with m*mc (Thm 4.4), measured vs bound");

  engine::SweepPlan plan;
  plan.scenarios = {{.name = "mmd",
                     .params = engine::SolveOptions()
                                   .set("streams", 10)
                                   .set("users", 5)
                                   .set("budget-fraction", 0.4)
                                   .set("capacity-fraction", 0.5),
                     .seed = 5000}};
  plan.scenario_axes = {
      {"m", bench::axis_values(
                bench::full_or_smoke<std::vector<int>>({1, 2, 4, 8}, {1, 2}))},
      {"mc", bench::axis_values(
                 bench::full_or_smoke<std::vector<int>>({1, 2, 4}, {1, 2}))}};
  plan.algorithms = {{.name = "pipeline"}, {.name = "exact"}};
  plan.replicates = bench::runs(6);
  const engine::SweepResult result = engine::run_sweep(plan);
  bench::die_on_error(result);

  util::Table table({"m", "mc", "m*mc", "runs", "mean OPT/ALG", "max OPT/ALG",
                     "bound (2m-1)(2mc-1)*2t*3e/(e-1)", "feasible"});
  for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
    const engine::SweepCell& alg = result.cell(sc, 0);
    const engine::SweepCell& exact = result.cell(sc, 1);
    const bench::RatioStats ratio = bench::paired_ratio(exact, alg);
    const int m = static_cast<int>(
        alg.scenario.params.get_int("m", 1));
    const int mc = static_cast<int>(
        alg.scenario.params.get_int("mc", 1));
    int bands = 1;
    for (const engine::RunRecord& run : alg.runs)
      bands = std::max(bands, static_cast<int>(run.stat("num_bands")));
    const double bound = (2.0 * m - 1) * (2.0 * mc - 1) * 2.0 * bands * 3.0 *
                         bench::kE / (bench::kE - 1.0);
    table.row()
        .add(m)
        .add(mc)
        .add(m * mc)
        .add(alg.runs.size())
        .add(ratio.mean(), 3)
        .add(ratio.worst(), 3)
        .add(bound, 1)
        .add(alg.feasible_count == alg.runs.size() ? "yes" : "NO");
  }
  table.print_aligned(std::cout, "E5: ratio vs (m, mc)");
  bench::print_footer(
      "measured loss grows mildly with m*mc, far inside the proven factor");
}

}  // namespace

int main() {
  run();
  return 0;
}
