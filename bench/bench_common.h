// Shared helpers for the experiment harnesses (bench/table_e*.cpp).
//
// Every harness prints (a) the experiment id and the paper claim being
// regenerated, (b) a deterministic table of measurements (seeds printed),
// matching the rows recorded in EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>

#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace vdist::bench {

inline constexpr double kE = 2.718281828459045;

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n##### Experiment " << id << " #####\n"
            << "claim: " << claim << "\n";
}

inline void print_footer(const std::string& verdict) {
  std::cout << "verdict: " << verdict << "\n";
}

// Ratio accumulator: OPT / ALG >= 1; tracks mean and worst case.
struct RatioStats {
  util::RunningStats stats;
  void add(double opt, double alg) {
    if (alg <= 0.0) {
      stats.add(opt <= 0.0 ? 1.0 : 1e9);
      return;
    }
    stats.add(opt / alg);
  }
  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double worst() const { return stats.max(); }
};

}  // namespace vdist::bench
