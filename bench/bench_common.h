// Shared helpers for the experiment harnesses (bench/table_e*.cpp).
//
// Every harness prints (a) the experiment id and the paper claim being
// regenerated, (b) a deterministic table of measurements (seeds printed),
// matching the rows recorded in EXPERIMENTS.md.
//
// Algorithms are invoked through the engine registry (engine/solver.h) —
// harnesses name algorithms by string and read objectives/diagnostics off
// the uniform SolveResult instead of linking each algorithm's own API.
//
// Smoke mode: when VDIST_BENCH_SMOKE is set (the `bench-smoke` CMake
// target and CI set it), harnesses shrink their sweeps to a tiny
// configuration that exercises every code path in seconds. Numbers
// produced under smoke mode are NOT the experiment — they only prove the
// harness still runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/batch.h"
#include "engine/solver.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace vdist::bench {

inline constexpr double kE = 2.718281828459045;

[[nodiscard]] inline bool smoke_mode() {
  static const bool enabled = std::getenv("VDIST_BENCH_SMOKE") != nullptr;
  return enabled;
}

// The full-experiment value, or a tiny stand-in under smoke mode.
template <typename T>
[[nodiscard]] T full_or_smoke(T full, T smoke) {
  return smoke_mode() ? smoke : full;
}

// Repetition count: smoke mode caps it at 2 runs.
[[nodiscard]] inline int runs(int full) { return smoke_mode() ? 2 : full; }

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n##### Experiment " << id << " #####\n"
            << "claim: " << claim << "\n";
  if (smoke_mode())
    std::cout << "(smoke mode: tiny sweep, numbers not representative)\n";
}

inline void print_footer(const std::string& verdict) {
  std::cout << "verdict: " << verdict << "\n";
}

// Request builder: the common (instance, algorithm) case in one line.
//   auto r = engine::solve(bench::request(inst, "greedy"));
[[nodiscard]] inline engine::SolveRequest request(
    const model::Instance& inst, std::string algorithm,
    engine::SolveOptions options = {}) {
  engine::SolveRequest req;
  req.instance = &inst;
  req.algorithm = std::move(algorithm);
  req.options = std::move(options);
  return req;
}

// Unwraps a SolveResult that the harness expects to succeed; a failure
// (unknown name, wrong instance form) is a harness bug worth dying loudly
// over rather than polluting a table with zeros. The lvalue overload is
// zero-copy (batch results are checked in place); the rvalue overload
// moves, so binding a reference to expect_ok(solve(...)) stays safe.
inline void die_unless_ok(const engine::SolveResult& r) {
  if (!r.ok) {
    std::cerr << "bench: solve '" << r.algorithm << "' failed: " << r.error
              << "\n";
    std::exit(1);
  }
}

[[nodiscard]] inline const engine::SolveResult& expect_ok(
    const engine::SolveResult& r) {
  die_unless_ok(r);
  return r;
}

[[nodiscard]] inline engine::SolveResult expect_ok(engine::SolveResult&& r) {
  die_unless_ok(r);
  return std::move(r);
}

// Ratio accumulator: OPT / ALG >= 1; tracks mean and worst case.
struct RatioStats {
  util::RunningStats stats;
  void add(double opt, double alg) {
    if (alg <= 0.0) {
      stats.add(opt <= 0.0 ? 1.0 : 1e9);
      return;
    }
    stats.add(opt / alg);
  }
  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double worst() const { return stats.max(); }
};

}  // namespace vdist::bench
