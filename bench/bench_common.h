// Shared helpers for the experiment harnesses (bench/table_e*.cpp).
//
// Every harness prints (a) the experiment id and the paper claim being
// regenerated, (b) a deterministic table of measurements (seeds printed),
// matching the rows recorded in EXPERIMENTS.md.
//
// Since the scenario/sweep redesign the harnesses are declarative: each
// builds an engine::SweepPlan (scenario x algorithm x seed cells) and
// reads its table off the aggregated engine::SweepResult — the sweep
// loop, thread fan-out and seeding live in src/engine/sweep.cpp, not
// here. This header keeps only the smoke-mode switches and the
// formatting/accumulation helpers the tables share.
//
// Smoke mode: when VDIST_BENCH_SMOKE is set (the `bench-smoke` CMake
// target and CI set it), harnesses shrink their sweeps to a tiny
// configuration that exercises every code path in seconds. Numbers
// produced under smoke mode are NOT the experiment — they only prove the
// harness still runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "engine/sweep.h"
#include "util/stats.h"
#include "util/table.h"

namespace vdist::bench {

inline constexpr double kE = 2.718281828459045;

[[nodiscard]] inline bool smoke_mode() {
  static const bool enabled = std::getenv("VDIST_BENCH_SMOKE") != nullptr;
  return enabled;
}

// The full-experiment value, or a tiny stand-in under smoke mode.
template <typename T>
[[nodiscard]] T full_or_smoke(T full, T smoke) {
  return smoke_mode() ? smoke : full;
}

// Repetition count: smoke mode caps it at 2 runs.
[[nodiscard]] inline int runs(int full) { return smoke_mode() ? 2 : full; }

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n##### Experiment " << id << " #####\n"
            << "claim: " << claim << "\n";
  if (smoke_mode())
    std::cout << "(smoke mode: tiny sweep, numbers not representative)\n";
}

inline void print_footer(const std::string& verdict) {
  std::cout << "verdict: " << verdict << "\n";
}

// Axis values are strings; benches keep their sweeps as numeric lists.
template <typename T>
[[nodiscard]] std::vector<std::string> axis_values(const std::vector<T>& xs) {
  std::vector<std::string> out;
  out.reserve(xs.size());
  for (const T& x : xs) out.push_back(util::format_double(
      static_cast<double>(x), 6));
  return out;
}

// A failed run in a sweep (unknown name, wrong instance form, solver
// limit) is a harness bug worth dying loudly over rather than polluting
// a table with zeros.
inline void die_on_error(const engine::SweepResult& result) {
  const std::string error = result.first_error();
  if (!error.empty()) {
    std::cerr << "bench: sweep failed: " << error << "\n";
    std::exit(1);
  }
}

// Ratio accumulator: OPT / ALG >= 1; tracks mean and worst case.
struct RatioStats {
  util::RunningStats stats;
  void add(double opt, double alg) {
    if (alg <= 0.0) {
      stats.add(opt <= 0.0 ? 1.0 : 1e9);
      return;
    }
    stats.add(opt / alg);
  }
  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double worst() const { return stats.max(); }
};

// Paired per-replicate ratio between two algorithm cells of one scenario
// cell (the OPT/ALG columns every quality table reports).
[[nodiscard]] inline RatioStats paired_ratio(const engine::SweepCell& opt,
                                             const engine::SweepCell& alg) {
  RatioStats ratio;
  for (std::size_t rep = 0; rep < opt.runs.size(); ++rep)
    ratio.add(opt.runs[rep].objective, alg.runs[rep].objective);
  return ratio;
}

}  // namespace vdist::bench
