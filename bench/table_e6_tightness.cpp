// E6 — Section 4.2: the explicit instance on which the Theorem 4.3
// output transformation can deteriorate by Theta(m*mc). The optimum is m.
// Three columns:
//   * adversarial decomposition — the paper's exact trace: the server
//     group that survives is the one holding the mc small streams, and
//     the per-user decomposition then keeps a single stream of utility
//     1/mc, for a loss of m*mc;
//   * best-group decomposition — our production transform_output, which
//     picks groups by utility and dodges part of the loss (still Theta(m):
//     one unit-utility stream survives);
//   * full pipeline — solve_mmd end to end.
//
// The m x mc grid and the pipeline solves are a SweepPlan over the
// `tightness` scenario (keep_instances hands the deterministic instances
// back); the first two columns reach below the engine on purpose — they
// replay decomposition internals no public algorithm exposes.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/mmd_reduction.h"
#include "gen/tightness.h"
#include "model/validate.h"
#include "util/interval_partition.h"

namespace {

using namespace vdist;

// Executes the Section 4.2 adversarial trace: restrict the optimal SMD
// solution to the group containing the small streams (all j >= m-1,
// 0-based), then keep one stream per user from the per-user interval
// decomposition (all its groups are singletons on this instance).
double adversarial_decomposition(const model::Instance& mmd, int m) {
  // The small streams: indices m-1 .. m+mc-2 (0-based).
  std::vector<model::StreamId> small;
  for (std::size_t s = static_cast<std::size_t>(m - 1); s < mmd.num_streams();
       ++s)
    small.push_back(static_cast<model::StreamId>(s));
  // Per-user (single user 0) decomposition on combined loads: every small
  // stream has combined load mc * (1/2 + eps')/mc... per measure it loads
  // one capacity by 1/2+eps', so the combined load is (1/2+eps')/1 per
  // stream; groups are singletons, so one stream survives.
  std::vector<double> sizes;
  for (model::StreamId s : small) {
    const auto e = mmd.find_edge(0, s);
    double k = 0.0;
    for (int j = 0; j < mmd.num_user_measures(); ++j)
      k += mmd.edge_load(*e, j) / mmd.capacity(0, j);
    sizes.push_back(k);
  }
  const util::IntervalPartition part = util::unit_interval_partition(sizes);
  // Adversarial: keep exactly the first group.
  double utility = 0.0;
  if (!part.groups.empty())
    for (std::size_t idx : part.groups.front())
      utility += mmd.utility(0, small[idx]);
  return utility;
}

void run() {
  bench::print_header(
      "E6", "Section 4.2 instance: decomposition can lose Theta(m*mc)");

  engine::SweepPlan plan;
  plan.scenarios = {{.name = "tightness"}};
  plan.scenario_axes = {
      {"m", bench::axis_values(bench::full_or_smoke<std::vector<int>>(
               {2, 3, 4, 6, 8}, {2, 3}))},
      {"mc", bench::axis_values(
                 bench::full_or_smoke<std::vector<int>>({2, 4, 8}, {2}))}};
  plan.algorithms = {{.name = "pipeline"}};
  plan.replicates = 1;  // the instance is deterministic
  engine::SweepOptions options;
  options.keep_instances = true;
  const engine::SweepResult result = engine::run_sweep(plan, options);
  bench::die_on_error(result);

  util::Table table({"m", "mc", "OPT", "adversarial util", "adv loss",
                     "best-group util", "best loss", "pipeline util",
                     "m*mc"});
  for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
    const engine::SweepCell& pipeline = result.cell(sc, 0);
    const int m =
        static_cast<int>(pipeline.scenario.params.get_int("m", 0));
    const int mc =
        static_cast<int>(pipeline.scenario.params.get_int("mc", 0));
    const model::Instance& inst = result.instance(sc, 0);
    const double opt = gen::tightness_opt({m, mc, -1.0, -1.0});

    const double adv = adversarial_decomposition(inst, m);

    // Production transform on the optimal SMD solution.
    const model::Instance smd = core::reduce_to_smd(inst);
    model::Assignment optimal_smd(smd);
    for (std::size_t s = 0; s < smd.num_streams(); ++s)
      optimal_smd.assign(0, static_cast<model::StreamId>(s));
    core::OutputTransformReport report;
    const model::Assignment best_group =
        core::transform_output(inst, optimal_smd, &report);
    const bool feasible = model::validate(best_group).feasible();

    table.row()
        .add(m)
        .add(mc)
        .add(opt, 2)
        .add(adv, 3)
        .add(opt / std::max(adv, 1e-9), 2)
        .add(report.final_utility, 3)
        .add(opt / std::max(report.final_utility, 1e-9), 2)
        .add(pipeline.runs[0].objective, 3)
        .add(m * mc);
    if (!feasible) std::cout << "WARNING: infeasible decomposition!\n";
  }
  table.print_aligned(std::cout,
                      "E6: deterioration on the Section 4.2 instance");
  bench::print_footer(
      "adversarial loss == m*mc exactly (Thm 4.3 analysis is tight); the "
      "utility-aware group choice recovers the mc factor on this instance");
}

}  // namespace

int main() {
  run();
  return 0;
}
