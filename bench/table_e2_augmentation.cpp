// E2 — Theorem 2.5 / Corollary 2.7: resource augmentation. The
// semi-feasible greedy achieves (1-1/e) of the optimum computed with the
// *reduced* budget B - cmax (Thm 2.5), and max(greedy, Amax) achieves
// (e-1)/2e of the true optimum while over-running each user cap by at
// most one stream (Cor 2.7).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "gen/random_instances.h"
#include "model/factory.h"

namespace {

using namespace vdist;

model::Instance with_budget(const model::Instance& inst, double budget) {
  std::vector<double> costs(inst.num_streams());
  std::vector<double> caps(inst.num_users());
  std::vector<model::CapEdge> edges;
  for (std::size_t s = 0; s < inst.num_streams(); ++s) {
    const auto sid = static_cast<model::StreamId>(s);
    costs[s] = inst.cost(sid, 0);
    const auto users = inst.users_of(sid);
    const auto utils = inst.utilities_of(sid);
    for (std::size_t t = 0; t < users.size(); ++t)
      edges.push_back({users[t], sid, utils[t]});
  }
  for (std::size_t u = 0; u < inst.num_users(); ++u)
    caps[u] = inst.capacity(static_cast<model::UserId>(u), 0);
  return model::build_cap_instance(costs, budget, caps, edges);
}

void run() {
  bench::print_header("E2",
                      "greedy(capped) >= (1-1/e)*OPT(B-cmax) (Thm 2.5); "
                      "max(greedy,Amax) >= (e-1)/2e * OPT (Cor 2.7)");
  const double thm25 = 1.0 - 1.0 / bench::kE;          // 0.632
  const double cor27 = (bench::kE - 1.0) / (2 * bench::kE);  // 0.316

  util::Table table({"|S|", "B-frac", "runs", "min greedy/OPT-", "bound",
                     "min aug/OPT", "bound(aug)", "semi-feasible"});
  std::uint64_t seed = 2000;
  const int kRuns = bench::runs(12);
  const auto stream_sizes =
      bench::full_or_smoke<std::vector<std::size_t>>({10, 14}, {10});
  const auto budget_fractions =
      bench::full_or_smoke<std::vector<double>>({0.35, 0.6}, {0.35});
  for (std::size_t streams : stream_sizes) {
    for (double bf : budget_fractions) {
      double worst25 = 1e9;
      double worst27 = 1e9;
      bool all_semi = true;
      for (int run = 0; run < kRuns; ++run) {
        gen::RandomCapConfig cfg;
        cfg.num_streams = streams;
        cfg.num_users = 6;
        cfg.budget_fraction = bf;
        cfg.seed = seed++;
        const model::Instance inst = gen::random_cap_instance(cfg);
        double cmax = 0.0;
        for (std::size_t s = 0; s < inst.num_streams(); ++s)
          cmax = std::max(cmax, inst.cost(static_cast<model::StreamId>(s), 0));
        const engine::SolveResult g =
            bench::expect_ok(engine::solve(bench::request(inst, "greedy-plain")));
        // Theorem 2.5: compare with OPT at budget B - cmax.
        if (inst.budget(0) - cmax > cmax) {
          const model::Instance reduced =
              with_budget(inst, inst.budget(0) - cmax);
          const double opt_minus =
              bench::expect_ok(engine::solve(bench::request(reduced, "exact")))
                  .objective;
          if (opt_minus > 0) worst25 = std::min(worst25, g.objective / opt_minus);
        }
        // Corollary 2.7: the augmented candidate vs. the true OPT.
        const double opt =
            bench::expect_ok(engine::solve(bench::request(inst, "exact")))
                .objective;
        const engine::SolveResult aug = bench::expect_ok(
            engine::solve(bench::request(inst, "greedy-augmented")));
        if (opt > 0) worst27 = std::min(worst27, aug.objective / opt);
        all_semi &= aug.feasibility != model::Feasibility::kInfeasible;
      }
      table.row()
          .add(streams)
          .add(bf, 2)
          .add(kRuns)
          .add(worst25, 3)
          .add(thm25, 3)
          .add(worst27, 3)
          .add(cor27, 3)
          .add(all_semi ? "yes" : "NO");
    }
  }
  table.print_aligned(std::cout, "E2: resource augmentation guarantees");
  bench::print_footer(
      "both augmentation bounds hold with slack on random instances");
}

}  // namespace

int main() {
  run();
  return 0;
}
