// E2 — Theorem 2.5 / Corollary 2.7: resource augmentation. The
// semi-feasible greedy achieves (1-1/e) of the optimum computed with the
// *reduced* budget B - cmax (Thm 2.5), and max(greedy, Amax) achieves
// (e-1)/2e of the true optimum while over-running each user cap by at
// most one stream (Cor 2.7).
//
// The reduced-budget workload is the `cap` scenario's budget-minus-cmax
// param (a scenario registration, not bench code), so the plan carries
// two bases — the plain instance and its Theorem 2.5 reduction — paired
// by replicate seed.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header("E2",
                      "greedy(capped) >= (1-1/e)*OPT(B-cmax) (Thm 2.5); "
                      "max(greedy,Amax) >= (e-1)/2e * OPT (Cor 2.7)");
  const double thm25 = 1.0 - 1.0 / bench::kE;          // 0.632
  const double cor27 = (bench::kE - 1.0) / (2 * bench::kE);  // 0.316

  engine::SweepPlan plan;
  plan.scenarios = {
      {.name = "cap",
       .params = engine::SolveOptions().set("users", 6),
       .seed = 2000,
       .label = "cap"},
      {.name = "cap",
       .params = engine::SolveOptions().set("users", 6).set(
           "budget-minus-cmax", 1),
       .seed = 2000,
       .label = "cap-reduced"}};
  plan.scenario_axes = {
      {"streams", bench::axis_values(bench::full_or_smoke<
                      std::vector<std::size_t>>({10, 14}, {10}))},
      {"budget-fraction",
       bench::axis_values(
           bench::full_or_smoke<std::vector<double>>({0.35, 0.6}, {0.35}))}};
  plan.algorithms = {{.name = "exact"},
                     {.name = "greedy-plain"},
                     {.name = "greedy-augmented"}};
  plan.replicates = bench::runs(12);
  engine::SweepOptions options;
  options.keep_instances = true;  // the Thm 2.5 guard reads B and cmax
  const engine::SweepResult result = engine::run_sweep(plan, options);
  bench::die_on_error(result);

  util::Table table({"|S|", "B-frac", "runs", "min greedy/OPT-", "bound",
                     "min aug/OPT", "bound(aug)", "semi-feasible"});
  // Scenario cells are base-major: plain cells first, their reduced
  // counterparts S/2 later (same axes, same seeds).
  const std::size_t half = result.num_scenario_cells / 2;
  for (std::size_t sc = 0; sc < half; ++sc) {
    const engine::SweepCell& exact = result.cell(sc, 0);
    const engine::SweepCell& plain = result.cell(sc, 1);
    const engine::SweepCell& aug = result.cell(sc, 2);
    const engine::SweepCell& exact_reduced = result.cell(sc + half, 0);

    double worst25 = 1e9;
    double worst27 = 1e9;
    bool all_semi = true;
    for (std::size_t rep = 0; rep < exact.runs.size(); ++rep) {
      // Theorem 2.5: compare with OPT at budget B - cmax, where the
      // comparison is meaningful (reduced budget still above cmax).
      const model::Instance& inst = result.instance(sc, static_cast<int>(rep));
      double cmax = 0.0;
      for (std::size_t s = 0; s < inst.num_streams(); ++s)
        cmax = std::max(cmax, inst.cost(static_cast<model::StreamId>(s), 0));
      if (inst.budget(0) - cmax > cmax) {
        const double opt_minus = exact_reduced.runs[rep].objective;
        if (opt_minus > 0)
          worst25 =
              std::min(worst25, plain.runs[rep].objective / opt_minus);
      }
      // Corollary 2.7: the augmented candidate vs. the true OPT.
      const double opt = exact.runs[rep].objective;
      if (opt > 0)
        worst27 = std::min(worst27, aug.runs[rep].objective / opt);
      all_semi &=
          aug.runs[rep].feasibility != model::Feasibility::kInfeasible;
    }

    table.row()
        .add(exact.scenario.params.get("streams", ""))
        .add(exact.scenario.params.get("budget-fraction", ""))
        .add(exact.runs.size())
        .add(worst25, 3)
        .add(thm25, 3)
        .add(worst27, 3)
        .add(cor27, 3)
        .add(all_semi ? "yes" : "NO");
  }
  table.print_aligned(std::cout, "E2: resource augmentation guarantees");
  bench::print_footer(
      "both augmentation bounds hold with slack on random instances");
}

}  // namespace

int main() {
  run();
  return 0;
}
