// E7 — Theorem 5.4 / Lemma 5.1: Algorithm Allocate. On small-streams
// instances (every cost <= bound/log2 mu) the pure online algorithm never
// violates a budget and is (1 + 2*log2 mu)-competitive. The sweep also
// *breaks* the premise (streams bigger than the threshold) to show where
// feasibility is lost without the guard and recovered with it.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gen/small_streams.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E7",
      "Allocate: feasible without guard iff small-streams (Lem 5.1); "
      "(1+2log2 mu)-competitive (Thm 5.4)");
  util::Table table({"premise", "tightness", "runs", "mu", "violations",
                     "min ALG*/off", "1/(1+2log2mu)", "accept%",
                     "guard trips(on)"});
  const int kRuns = bench::runs(6);
  const std::size_t kStreams = bench::full_or_smoke<std::size_t>(150, 40);
  std::uint64_t seed = 7000;
  struct Setting {
    const char* label;
    double tightness;  // >= 1 keeps the premise; < 1 breaks it (we shrink
                       // the budgets below the required log2(mu) factor)
  };
  const auto settings = bench::full_or_smoke<std::vector<Setting>>(
      {Setting{"holds", 1.0}, Setting{"holds", 2.0}, Setting{"broken", 0.35},
       Setting{"broken", 0.15}},
      {Setting{"holds", 1.0}, Setting{"broken", 0.35}});
  for (const Setting& setting : settings) {
    std::size_t violations = 0;
    std::size_t guard_trips = 0;
    double worst_competitive = 1e9;
    util::RunningStats mu_stats;
    util::RunningStats accept;
    for (int run = 0; run < kRuns; ++run) {
      gen::SmallStreamsConfig cfg;
      cfg.num_streams = kStreams;
      cfg.num_users = 10;
      cfg.tightness = std::max(setting.tightness, 1.0);
      cfg.seed = seed++;
      auto built = gen::small_streams_instance(cfg);
      model::Instance inst = std::move(built.instance);
      if (setting.tightness < 1.0) {
        // Shrink the budgets below the premise by rebuilding with scaled
        // bounds (rebuild keeps everything else identical).
        model::InstanceBuilder b(inst.num_server_measures(),
                                 inst.num_user_measures());
        double max_cost = 0.0;
        for (std::size_t s = 0; s < inst.num_streams(); ++s)
          for (int i = 0; i < inst.num_server_measures(); ++i)
            max_cost = std::max(max_cost,
                                inst.cost(static_cast<model::StreamId>(s), i));
        for (int i = 0; i < inst.num_server_measures(); ++i)
          b.set_budget(i, std::max(inst.budget(i) * setting.tightness,
                                   max_cost));
        for (std::size_t s = 0; s < inst.num_streams(); ++s) {
          std::vector<double> costs;
          for (int i = 0; i < inst.num_server_measures(); ++i)
            costs.push_back(inst.cost(static_cast<model::StreamId>(s), i));
          b.add_stream(std::move(costs));
        }
        for (std::size_t u = 0; u < inst.num_users(); ++u) {
          std::vector<double> caps;
          for (int j = 0; j < inst.num_user_measures(); ++j)
            caps.push_back(inst.capacity(static_cast<model::UserId>(u), j));
          b.add_user(std::move(caps));
        }
        for (std::size_t s = 0; s < inst.num_streams(); ++s) {
          const auto sid = static_cast<model::StreamId>(s);
          for (model::EdgeId e = inst.first_edge(sid); e < inst.last_edge(sid);
               ++e) {
            std::vector<double> loads;
            for (int j = 0; j < inst.num_user_measures(); ++j)
              loads.push_back(inst.edge_load(e, j));
            b.add_interest(inst.edge_user(e), sid, inst.edge_utility(e),
                           std::move(loads));
          }
        }
        inst = std::move(b).build();
      }

      const engine::SolveResult r = bench::expect_ok(engine::solve(
          bench::request(inst, "online",
                         engine::SolveOptions().set("guard", "0"))));
      mu_stats.add(r.stat("mu"));
      if (!r.feasible()) ++violations;
      accept.add(100.0 * r.stat("accepted") /
                 static_cast<double>(inst.num_streams()));

      const engine::SolveResult offline =
          bench::expect_ok(engine::solve(bench::request(inst, "pipeline")));
      if (offline.objective > 0)
        worst_competitive =
            std::min(worst_competitive, r.objective / offline.objective);

      const engine::SolveResult rg =
          bench::expect_ok(engine::solve(bench::request(inst, "online")));
      guard_trips += static_cast<std::size_t>(rg.stat("guard_trips"));
      if (!rg.feasible()) ++violations;
    }
    const double factor = 1.0 / (1.0 + 2.0 * std::log2(mu_stats.mean()));
    table.row()
        .add(setting.label)
        .add(setting.tightness, 2)
        .add(kRuns)
        .add(mu_stats.mean(), 0)
        .add(violations)
        .add(worst_competitive, 3)
        .add(factor, 3)
        .add(accept.mean(), 1)
        .add(guard_trips);
  }
  table.print_aligned(std::cout, "E7: online Allocate in and out of regime");
  bench::print_footer(
      "zero violations while the premise holds (guarded runs always "
      "feasible); competitive ratio beats the theorem floor");
}

}  // namespace

int main() {
  run();
  return 0;
}
