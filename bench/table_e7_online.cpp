// E7 — Theorem 5.4 / Lemma 5.1: Algorithm Allocate. On small-streams
// instances (every cost <= bound/log2 mu) the pure online algorithm never
// violates a budget and is (1 + 2*log2 mu)-competitive. The sweep also
// *breaks* the premise to show where feasibility is lost without the
// guard and recovered with it — the premise-breaking budget shrink is
// the `small` scenario's tightness < 1 regime (a scenario param, not
// bench code), so the whole experiment is one axis of one SweepPlan.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E7",
      "Allocate: feasible without guard iff small-streams (Lem 5.1); "
      "(1+2log2 mu)-competitive (Thm 5.4)");

  const std::size_t kStreams = bench::full_or_smoke<std::size_t>(150, 40);
  const auto tightness = bench::full_or_smoke<std::vector<double>>(
      {1.0, 2.0, 0.35, 0.15}, {1.0, 0.35});

  engine::SweepPlan plan;
  plan.scenarios = {{.name = "small",
                     .params = engine::SolveOptions()
                                   .set("streams", static_cast<int>(kStreams))
                                   .set("users", 10),
                     .seed = 7000}};
  plan.scenario_axes = {{"tightness", bench::axis_values(tightness)}};
  plan.algorithms = {
      {.name = "online",
       .options = engine::SolveOptions().set("guard", "0"),
       .axes = {},
       .label = "online-unguarded"},
      {.name = "online"},
      {.name = "pipeline"}};
  plan.replicates = bench::runs(6);
  const engine::SweepResult result = engine::run_sweep(plan);
  bench::die_on_error(result);

  util::Table table({"premise", "tightness", "runs", "mu", "violations",
                     "min ALG*/off", "1/(1+2log2mu)", "accept%",
                     "guard trips(on)"});
  for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
    const engine::SweepCell& unguarded = result.cell(sc, 0);
    const engine::SweepCell& guarded = result.cell(sc, 1);
    const engine::SweepCell& offline = result.cell(sc, 2);

    std::size_t violations = 0;
    std::size_t guard_trips = 0;
    double worst_competitive = 1e9;
    util::RunningStats accept;
    for (std::size_t rep = 0; rep < unguarded.runs.size(); ++rep) {
      if (!unguarded.runs[rep].feasible) ++violations;
      if (!guarded.runs[rep].feasible) ++violations;
      guard_trips +=
          static_cast<std::size_t>(guarded.runs[rep].stat("guard_trips"));
      accept.add(100.0 * unguarded.runs[rep].stat("accepted") /
                 static_cast<double>(kStreams));
      if (offline.runs[rep].objective > 0)
        worst_competitive =
            std::min(worst_competitive, unguarded.runs[rep].objective /
                                            offline.runs[rep].objective);
    }
    const double mu = unguarded.mean_stat("mu");
    const double factor = 1.0 / (1.0 + 2.0 * std::log2(mu));
    table.row()
        .add(tightness[sc] >= 1.0 ? "holds" : "broken")
        .add(tightness[sc], 2)
        .add(unguarded.runs.size())
        .add(mu, 0)
        .add(violations)
        .add(worst_competitive, 3)
        .add(factor, 3)
        .add(accept.mean(), 1)
        .add(guard_trips);
  }
  table.print_aligned(std::cout, "E7: online Allocate in and out of regime");
  bench::print_footer(
      "zero violations while the premise holds (guarded runs always "
      "feasible); competitive ratio beats the theorem floor");
}

}  // namespace

int main() {
  run();
  return 0;
}
