// E8 — running-time scaling (google-benchmark). The paper claims O(n^2)
// for the fixed greedy (§2.1 complexity analysis, Thm 2.8) where n is the
// input length |S| + |U| + edges; Allocate is O(n log n)-ish per stream
// sweep (sorting candidates dominates). Complexity fits are reported by
// google-benchmark's BigO machinery over a size sweep.
//
// Instances come from the scenario registry (the same specs a SweepPlan
// or the CLI would name) and solves dispatch through the engine registry
// with validation disabled, so the timed region is the algorithm plus the
// (constant) dispatch cost — the same path a production caller pays.
// Under VDIST_BENCH_SMOKE the main() injects a tiny --benchmark_min_time
// so every benchmark still executes (bit-rot check) without the full
// measurement cost.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

engine::SolveRequest request(const model::Instance& inst, const char* algo) {
  engine::SolveRequest req;
  req.instance = &inst;
  req.algorithm = algo;
  req.validate = false;  // keep the O(n) feasibility recheck out of the lap
  return req;
}

engine::ScenarioSpec cap_spec(std::int64_t streams) {
  engine::ScenarioSpec spec;
  spec.name = "cap";
  spec.params.set("streams", static_cast<int>(streams))
      .set("users", static_cast<int>(streams / 4 + 2))
      .set("interest", 4)
      .set("budget-fraction", 0.3);
  spec.seed = 12345;
  return spec;
}

void BM_GreedyUnitSkew(benchmark::State& state) {
  const model::Instance inst = engine::build_scenario(cap_spec(state.range(0)));
  const engine::SolveRequest req = request(inst, "greedy-plain");
  for (auto _ : state) {
    engine::SolveResult r = engine::solve(req);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_GreedyUnitSkew)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_FixedGreedy(benchmark::State& state) {
  const model::Instance inst = engine::build_scenario(cap_spec(state.range(0)));
  const engine::SolveRequest req = request(inst, "greedy");
  for (auto _ : state) {
    engine::SolveResult r = engine::solve(req);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_FixedGreedy)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_SkewBandsPipeline(benchmark::State& state) {
  engine::ScenarioSpec spec;
  spec.name = "smd";
  spec.params.set("streams", static_cast<int>(state.range(0)))
      .set("users", static_cast<int>(state.range(0) / 4 + 2))
      .set("skew", 64);
  spec.seed = 54321;
  const model::Instance inst = engine::build_scenario(spec);
  const engine::SolveRequest req = request(inst, "pipeline");
  for (auto _ : state) {
    engine::SolveResult r = engine::solve(req);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_SkewBandsPipeline)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity(benchmark::oNSquared);

void BM_AllocateOnline(benchmark::State& state) {
  engine::ScenarioSpec spec;
  spec.name = "mmd";
  spec.params.set("streams", static_cast<int>(state.range(0)))
      .set("users", static_cast<int>(state.range(0) / 4 + 2))
      .set("m", 3)
      .set("mc", 2);
  spec.seed = 777;
  const model::Instance inst = engine::build_scenario(spec);
  const engine::SolveRequest req = request(inst, "online");
  for (auto _ : state) {
    engine::SolveResult r = engine::solve(req);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_AllocateOnline)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_ExactSolver(benchmark::State& state) {
  engine::ScenarioSpec spec = cap_spec(state.range(0));
  spec.params.set("users", 5);
  const model::Instance inst = engine::build_scenario(spec);
  const engine::SolveRequest req = request(inst, "exact");
  for (auto _ : state) {
    engine::SolveResult r = engine::solve(req);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_ExactSolver)->DenseRange(10, 18, 4);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Bare-number form: the "0.01s" suffix syntax needs benchmark >= 1.8.
  std::string min_time = "--benchmark_min_time=0.01";
  if (std::getenv("VDIST_BENCH_SMOKE") != nullptr)
    args.push_back(min_time.data());
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
