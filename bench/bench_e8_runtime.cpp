// E8 — running-time scaling (google-benchmark). The paper claims O(n^2)
// for the fixed greedy (§2.1 complexity analysis, Thm 2.8) where n is the
// input length |S| + |U| + edges; Allocate is O(n log n)-ish per stream
// sweep (sorting candidates dominates). Complexity fits are reported by
// google-benchmark's BigO machinery over a size sweep.
#include <benchmark/benchmark.h>

#include "core/allocate_online.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/mmd_solver.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

gen::RandomCapConfig cap_config(std::int64_t streams) {
  gen::RandomCapConfig cfg;
  cfg.num_streams = static_cast<std::size_t>(streams);
  cfg.num_users = static_cast<std::size_t>(streams) / 4 + 2;
  cfg.interest_per_stream = 4.0;
  cfg.budget_fraction = 0.3;
  cfg.seed = 12345;
  return cfg;
}

void BM_GreedyUnitSkew(benchmark::State& state) {
  const model::Instance inst = gen::random_cap_instance(cap_config(state.range(0)));
  for (auto _ : state) {
    core::GreedyResult r = core::greedy_unit_skew(inst);
    benchmark::DoNotOptimize(r.capped_utility);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_GreedyUnitSkew)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_FixedGreedy(benchmark::State& state) {
  const model::Instance inst = gen::random_cap_instance(cap_config(state.range(0)));
  for (auto _ : state) {
    core::SmdSolveResult r = core::solve_unit_skew(inst);
    benchmark::DoNotOptimize(r.utility);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_FixedGreedy)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_SkewBandsPipeline(benchmark::State& state) {
  gen::RandomSmdConfig cfg;
  cfg.num_streams = static_cast<std::size_t>(state.range(0));
  cfg.num_users = cfg.num_streams / 4 + 2;
  cfg.target_skew = 64.0;
  cfg.seed = 54321;
  const model::Instance inst = gen::random_smd_instance(cfg);
  for (auto _ : state) {
    core::MmdSolveResult r = core::solve_mmd(inst);
    benchmark::DoNotOptimize(r.utility);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_SkewBandsPipeline)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity(benchmark::oNSquared);

void BM_AllocateOnline(benchmark::State& state) {
  gen::RandomMmdConfig cfg;
  cfg.num_streams = static_cast<std::size_t>(state.range(0));
  cfg.num_users = cfg.num_streams / 4 + 2;
  cfg.num_server_measures = 3;
  cfg.num_user_measures = 2;
  cfg.seed = 777;
  const model::Instance inst = gen::random_mmd_instance(cfg);
  for (auto _ : state) {
    core::AllocateResult r = core::allocate_online(inst);
    benchmark::DoNotOptimize(r.utility);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.input_length()));
}
BENCHMARK(BM_AllocateOnline)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_ExactSolver(benchmark::State& state) {
  gen::RandomCapConfig cfg = cap_config(state.range(0));
  cfg.num_users = 5;
  const model::Instance inst = gen::random_cap_instance(cfg);
  for (auto _ : state) {
    core::ExactResult r = core::solve_exact(inst);
    benchmark::DoNotOptimize(r.utility);
  }
}
BENCHMARK(BM_ExactSolver)->DenseRange(10, 18, 4);

}  // namespace

BENCHMARK_MAIN();
