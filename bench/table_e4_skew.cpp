// E4 — Theorem 3.1: classify-and-select handles arbitrary local skew with
// an O(log 2*alpha) factor. Sweeps the target skew (a scenario axis) over
// powers of two and reports the measured OPT/ALG ratio, the band count
// t = 1 + floor(log2 a), and the theorem's concrete factor 2t * 3e/(e-1)
// — the measured ratio must stay below it and should grow (at most)
// logarithmically.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E4", "SMD with skew alpha: ratio O(log 2*alpha) via bands (Thm 3.1)");

  const auto targets = bench::full_or_smoke<std::vector<double>>(
      {1.0, 2.0, 4.0, 16.0, 64.0, 256.0, 1024.0}, {1.0, 16.0, 256.0});
  engine::SweepPlan plan;
  plan.scenarios = {{.name = "smd",
                     .params = engine::SolveOptions()
                                   .set("streams", 12)
                                   .set("users", 6)
                                   .set("budget-fraction", 0.35)
                                   .set("capacity-fraction", 0.45),
                     .seed = 4000}};
  plan.scenario_axes = {{"skew", bench::axis_values(targets)}};
  plan.algorithms = {{.name = "bands"}, {.name = "exact"}};
  plan.replicates = bench::runs(8);
  const engine::SweepResult result = engine::run_sweep(plan);
  bench::die_on_error(result);

  util::Table table({"target a", "measured a", "bands t", "runs",
                     "mean OPT/ALG", "max OPT/ALG", "bound 2t*3e/(e-1)"});
  std::vector<double> alphas;
  std::vector<double> ratios;
  for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
    const engine::SweepCell& alg = result.cell(sc, 0);
    const engine::SweepCell& exact = result.cell(sc, 1);
    const bench::RatioStats ratio = bench::paired_ratio(exact, alg);
    const double mean_alpha = alg.mean_stat("alpha");
    int bands = 0;
    for (const engine::RunRecord& run : alg.runs)
      bands = std::max(bands, static_cast<int>(run.stat("num_bands")));
    const double t = std::max(
        1.0, 1.0 + std::floor(std::log2(std::max(mean_alpha, 1.0))));
    const double bound = 2.0 * t * 3.0 * bench::kE / (bench::kE - 1.0);
    table.row()
        .add(targets[sc], 0)
        .add(mean_alpha, 2)
        .add(bands)
        .add(alg.runs.size())
        .add(ratio.mean(), 3)
        .add(ratio.worst(), 3)
        .add(bound, 1);
    alphas.push_back(std::max(mean_alpha, 1.0));
    ratios.push_back(ratio.mean());
  }
  table.print_aligned(std::cout, "E4: ratio vs local skew");

  // Growth check: the ratio may grow at most logarithmically in alpha, so
  // the log-log slope against log2(2*alpha) must stay clearly below 1.
  std::vector<double> log_alpha;
  for (double a : alphas) log_alpha.push_back(std::log2(2 * a));
  const double slope = util::fit_loglog_slope(log_alpha, ratios);
  std::cout << "ratio ~ (log 2a)^" << util::format_double(slope, 3)
            << "  (sub-linear in log alpha = consistent with O(log 2a))\n";
  bench::print_footer("measured ratio grows slowly and stays under the bound");
}

}  // namespace

int main() {
  run();
  return 0;
}
