// E4 — Theorem 3.1: classify-and-select handles arbitrary local skew with
// an O(log 2*alpha) factor. Sweeps the target skew over powers of two and
// reports the measured OPT/ALG ratio, the band count t = 1 + floor(log2 a),
// and the theorem's concrete factor 2t * 3e/(e-1) — the measured ratio
// must stay below it and should grow (at most) logarithmically.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

void run() {
  bench::print_header(
      "E4", "SMD with skew alpha: ratio O(log 2*alpha) via bands (Thm 3.1)");
  util::Table table({"target a", "measured a", "bands t", "runs",
                     "mean OPT/ALG", "max OPT/ALG", "bound 2t*3e/(e-1)"});
  std::vector<double> alphas;
  std::vector<double> ratios;
  const int kRuns = bench::runs(8);
  const auto targets = bench::full_or_smoke<std::vector<double>>(
      {1.0, 2.0, 4.0, 16.0, 64.0, 256.0, 1024.0}, {1.0, 16.0, 256.0});
  std::uint64_t seed = 4000;
  for (double target : targets) {
    bench::RatioStats ratio;
    util::RunningStats alpha_stats;
    int bands = 0;
    for (int run = 0; run < kRuns; ++run) {
      gen::RandomSmdConfig cfg;
      cfg.num_streams = 12;
      cfg.num_users = 6;
      cfg.target_skew = target;
      cfg.budget_fraction = 0.35;
      cfg.capacity_fraction = 0.45;
      cfg.seed = seed++;
      const model::Instance inst = gen::random_smd_instance(cfg);
      const engine::SolveResult alg =
          bench::expect_ok(engine::solve(bench::request(inst, "bands")));
      const double opt =
          bench::expect_ok(engine::solve(bench::request(inst, "exact")))
              .objective;
      ratio.add(opt, alg.objective);
      alpha_stats.add(alg.stat("alpha"));
      bands = std::max(bands, static_cast<int>(alg.stat("num_bands")));
    }
    const double t = std::max(1.0, 1.0 + std::floor(std::log2(
                                            std::max(alpha_stats.mean(), 1.0))));
    const double bound = 2.0 * t * 3.0 * bench::kE / (bench::kE - 1.0);
    table.row()
        .add(target, 0)
        .add(alpha_stats.mean(), 2)
        .add(bands)
        .add(kRuns)
        .add(ratio.mean(), 3)
        .add(ratio.worst(), 3)
        .add(bound, 1);
    alphas.push_back(std::max(alpha_stats.mean(), 1.0));
    ratios.push_back(ratio.mean());
  }
  table.print_aligned(std::cout, "E4: ratio vs local skew");

  // Growth check: the ratio may grow at most logarithmically in alpha, so
  // the log-log slope against log2(2*alpha) must stay clearly below 1.
  std::vector<double> log_alpha;
  for (double a : alphas) log_alpha.push_back(std::log2(2 * a));
  const double slope = util::fit_loglog_slope(log_alpha, ratios);
  std::cout << "ratio ~ (log 2a)^" << util::format_double(slope, 3)
            << "  (sub-linear in log alpha = consistent with O(log 2a))\n";
  bench::print_footer("measured ratio grows slowly and stays under the bound");
}

}  // namespace

int main() {
  run();
  return 0;
}
