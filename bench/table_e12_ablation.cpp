// E12 — design-choice ablations called out in DESIGN.md:
//   (a) the §2.2 fix: plain greedy vs. best-of(A1, A2, Amax) — the fix is
//       what turns an unbounded ratio into 3e/(e-1);
//   (b) the last-stream peel: paper-faithful unconditional peel vs. our
//       "peel only saturated users" refinement;
//   (c) lazy vs. eager greedy evaluation: identical output, fewer oracle
//       calls (Lemma 2.1 submodularity is what licenses laziness);
//   (d) solving §3 bands with partial enumeration instead of the fixed
//       greedy: quality uplift vs. cost.
// End-to-end solves go through the engine registry; (b) and (c) reach
// below it on purpose — they ablate internals no public algorithm exposes.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/submodular.h"
#include "gen/random_instances.h"

namespace {

using namespace vdist;

// Paper-faithful split: always peel the last stream of every user.
double unconditional_split_value(const model::Instance& inst,
                                 const model::Assignment& semi) {
  model::Assignment a1(inst);
  model::Assignment a2(inst);
  for (std::size_t uu = 0; uu < inst.num_users(); ++uu) {
    const auto u = static_cast<model::UserId>(uu);
    const auto streams = semi.streams_of(u);
    if (streams.empty()) continue;
    for (std::size_t t = 0; t + 1 < streams.size(); ++t)
      a1.assign(u, streams[t]);
    a2.assign(u, streams.back());
  }
  return std::max(a1.utility(), a2.utility());
}

void run() {
  bench::print_header("E12", "design ablations (fix, peel, laziness, bands)");

  // --- (a) + (b): the fix and the peel refinement -------------------------
  {
    util::Table table({"config", "runs", "mean OPT/ALG", "max OPT/ALG"});
    const int kRuns = bench::runs(20);
    bench::RatioStats plain, paper_fix, refined_fix;
    std::uint64_t seed = 9000;
    for (int run = 0; run < kRuns; ++run) {
      gen::RandomCapConfig cfg;
      cfg.num_streams = 14;
      cfg.num_users = 7;
      cfg.budget_fraction = 0.3;
      cfg.cap_fraction = 0.4;
      cfg.seed = seed++;
      const model::Instance inst = gen::random_cap_instance(cfg);
      const double opt =
          bench::expect_ok(engine::solve(bench::request(inst, "exact")))
              .objective;
      const engine::SolveResult g =
          bench::expect_ok(engine::solve(bench::request(inst, "greedy-plain")));
      const double amax =
          bench::expect_ok(engine::solve(bench::request(inst, "amax")))
              .objective;

      plain.add(opt, g.objective);
      paper_fix.add(opt,
                    std::max(unconditional_split_value(inst, g.solution()),
                             amax));
      const engine::SolveResult refined =
          bench::expect_ok(engine::solve(bench::request(inst, "greedy")));
      refined_fix.add(opt, refined.objective);
    }
    table.row().add("greedy only (semi-feasible)").add(kRuns)
        .add(plain.mean(), 3).add(plain.worst(), 3);
    table.row().add("paper fix (unconditional peel)").add(kRuns)
        .add(paper_fix.mean(), 3).add(paper_fix.worst(), 3);
    table.row().add("refined fix (peel saturated only)").add(kRuns)
        .add(refined_fix.mean(), 3).add(refined_fix.worst(), 3);
    table.print_aligned(std::cout, "E12a/b: the Section 2.2 fix");
  }

  // --- (c): lazy vs eager oracle calls ------------------------------------
  {
    util::Table table({"|S|", "evals eager", "evals lazy", "saving x",
                       "values equal"});
    const auto sizes = bench::full_or_smoke<std::vector<std::size_t>>(
        {50, 100, 200, 400}, {50, 100});
    for (std::size_t streams : sizes) {
      gen::RandomCapConfig cfg;
      cfg.num_streams = streams;
      cfg.num_users = streams / 4;
      cfg.budget_fraction = 0.3;
      cfg.seed = 4242;
      const model::Instance inst = gen::random_cap_instance(cfg);
      std::vector<double> costs(inst.num_streams());
      for (std::size_t s = 0; s < costs.size(); ++s)
        costs[s] = inst.cost(static_cast<model::StreamId>(s), 0);
      core::CapUtilityOracle f1(inst);
      core::CapUtilityOracle f2(inst);
      const core::SubmodularResult eager =
          core::knapsack_greedy(f1, costs, inst.budget(0), {.lazy = false});
      const core::SubmodularResult lazy =
          core::knapsack_greedy(f2, costs, inst.budget(0), {.lazy = true});
      table.row()
          .add(streams)
          .add(eager.oracle_evals)
          .add(lazy.oracle_evals)
          .add(static_cast<double>(eager.oracle_evals) /
                   static_cast<double>(std::max<std::size_t>(
                       lazy.oracle_evals, 1)),
               1)
          .add(std::abs(eager.value - lazy.value) < 1e-9 ? "yes" : "NO");
    }
    table.print_aligned(std::cout, "E12c: lazy evaluation");
  }

  // --- (d): band solver choice ---------------------------------------------
  {
    util::Table table({"skew", "runs", "greedy bands util", "enum bands util",
                       "uplift %", "ms greedy", "ms enum"});
    const int kRuns = bench::runs(5);
    const auto skews =
        bench::full_or_smoke<std::vector<double>>({4.0, 32.0}, {4.0});
    std::uint64_t seed = 9900;
    for (double skew : skews) {
      util::RunningStats util_greedy, util_enum, ms_greedy, ms_enum;
      for (int run = 0; run < kRuns; ++run) {
        gen::RandomSmdConfig cfg;
        cfg.num_streams = 12;
        cfg.num_users = 6;
        cfg.target_skew = skew;
        cfg.seed = seed++;
        const model::Instance inst = gen::random_smd_instance(cfg);
        const engine::SolveResult plain_bands =
            bench::expect_ok(engine::solve(bench::request(inst, "bands")));
        ms_greedy.add(plain_bands.wall_ms);
        util_greedy.add(plain_bands.objective);
        const engine::SolveResult enum_bands =
            bench::expect_ok(engine::solve(bench::request(
                inst, "bands",
                engine::SolveOptions().set("enum-bands", 1).set("depth", 2))));
        ms_enum.add(enum_bands.wall_ms);
        util_enum.add(enum_bands.objective);
      }
      table.row()
          .add(skew, 0)
          .add(kRuns)
          .add(util_greedy.mean(), 1)
          .add(util_enum.mean(), 1)
          .add(100.0 * (util_enum.mean() / util_greedy.mean() - 1.0), 2)
          .add(ms_greedy.mean(), 2)
          .add(ms_enum.mean(), 2);
    }
    table.print_aligned(std::cout, "E12d: band solver choice");
  }

  // --- (e): the augmentation post-pass -------------------------------------
  {
    util::Table table({"m x mc", "runs", "bare pipeline util",
                       "augmented util", "uplift %"});
    const int kRuns = bench::runs(8);
    const auto combos = bench::full_or_smoke<std::vector<std::pair<int, int>>>(
        {{2, 1}, {3, 2}, {4, 2}}, {{2, 1}});
    std::uint64_t seed = 9990;
    for (const auto& [m, mc] : combos) {
      util::RunningStats bare_util, aug_util;
      for (int run = 0; run < kRuns; ++run) {
        gen::RandomMmdConfig cfg;
        cfg.num_streams = 30;
        cfg.num_users = 12;
        cfg.num_server_measures = m;
        cfg.num_user_measures = mc;
        cfg.budget_fraction = 0.35;
        cfg.seed = seed++;
        const model::Instance inst = gen::random_mmd_instance(cfg);
        bare_util.add(bench::expect_ok(engine::solve(bench::request(
                                           inst, "pipeline",
                                           engine::SolveOptions().set(
                                               "augment", "0"))))
                          .objective);
        aug_util.add(
            bench::expect_ok(engine::solve(bench::request(inst, "pipeline")))
                .objective);
      }
      table.row()
          .add(std::to_string(m) + "x" + std::to_string(mc))
          .add(kRuns)
          .add(bare_util.mean(), 1)
          .add(aug_util.mean(), 1)
          .add(100.0 * (aug_util.mean() / bare_util.mean() - 1.0), 1);
    }
    table.print_aligned(std::cout, "E12e: augmentation post-pass");
  }

  bench::print_footer(
      "the fix is load-bearing; the refined peel never hurts; laziness "
      "preserves output with fewer oracle calls; augmentation reclaims the "
      "budget the Thm 4.3 decomposition discards");
}

}  // namespace

int main() {
  run();
  return 0;
}
