// E12 — design-choice ablations called out in DESIGN.md:
//   (a) the §2.2 fix: plain greedy vs. best-of(A1, A2, Amax) — the fix is
//       what turns an unbounded ratio into 3e/(e-1);
//   (b) the last-stream peel: paper-faithful unconditional peel vs. our
//       "peel only saturated users" refinement;
//   (c) lazy vs. eager greedy evaluation: identical output, fewer oracle
//       calls (Lemma 2.1 submodularity is what licenses laziness);
//   (d) solving §3 bands with partial enumeration instead of the fixed
//       greedy: quality uplift vs. cost.
// End-to-end solves are SweepPlans; (b) and (c) reach below the engine on
// purpose — they ablate internals no public algorithm exposes, replaying
// them on the sweep's retained instances and assignments.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/submodular.h"

namespace {

using namespace vdist;

// Paper-faithful split: always peel the last stream of every user.
double unconditional_split_value(const model::Instance& inst,
                                 const model::Assignment& semi) {
  model::Assignment a1(inst);
  model::Assignment a2(inst);
  for (std::size_t uu = 0; uu < inst.num_users(); ++uu) {
    const auto u = static_cast<model::UserId>(uu);
    const auto streams = semi.streams_of(u);
    if (streams.empty()) continue;
    for (std::size_t t = 0; t + 1 < streams.size(); ++t)
      a1.assign(u, streams[t]);
    a2.assign(u, streams.back());
  }
  return std::max(a1.utility(), a2.utility());
}

void run() {
  bench::print_header("E12", "design ablations (fix, peel, laziness, bands)");

  // --- (a) + (b): the fix and the peel refinement -------------------------
  {
    engine::SweepPlan plan;
    plan.scenarios = {{.name = "cap",
                       .params = engine::SolveOptions()
                                     .set("streams", 14)
                                     .set("users", 7)
                                     .set("budget-fraction", 0.3)
                                     .set("cap-fraction", 0.4),
                       .seed = 9000}};
    plan.algorithms = {{.name = "exact"},
                       {.name = "greedy-plain"},
                       {.name = "amax"},
                       {.name = "greedy"}};
    plan.replicates = bench::runs(20);
    engine::SweepOptions options;
    options.keep_instances = true;    // the paper-fix replay needs both
    options.keep_assignments = true;  // the instance and the semi solution
    const engine::SweepResult result = engine::run_sweep(plan, options);
    bench::die_on_error(result);

    const engine::SweepCell& exact = result.cell(0, 0);
    const engine::SweepCell& plain_cell = result.cell(0, 1);
    const engine::SweepCell& amax = result.cell(0, 2);
    const engine::SweepCell& refined_cell = result.cell(0, 3);

    bench::RatioStats plain = bench::paired_ratio(exact, plain_cell);
    bench::RatioStats refined = bench::paired_ratio(exact, refined_cell);
    bench::RatioStats paper_fix;
    for (std::size_t rep = 0; rep < exact.runs.size(); ++rep) {
      const double split = unconditional_split_value(
          result.instance(0, static_cast<int>(rep)),
          *plain_cell.runs[rep].assignment);
      paper_fix.add(exact.runs[rep].objective,
                    std::max(split, amax.runs[rep].objective));
    }

    util::Table table({"config", "runs", "mean OPT/ALG", "max OPT/ALG"});
    table.row().add("greedy only (semi-feasible)").add(exact.runs.size())
        .add(plain.mean(), 3).add(plain.worst(), 3);
    table.row().add("paper fix (unconditional peel)").add(exact.runs.size())
        .add(paper_fix.mean(), 3).add(paper_fix.worst(), 3);
    table.row().add("refined fix (peel saturated only)").add(exact.runs.size())
        .add(refined.mean(), 3).add(refined.worst(), 3);
    table.print_aligned(std::cout, "E12a/b: the Section 2.2 fix");
  }

  // --- (c): lazy vs eager oracle calls ------------------------------------
  {
    util::Table table({"|S|", "evals eager", "evals lazy", "saving x",
                       "values equal"});
    const auto sizes = bench::full_or_smoke<std::vector<std::size_t>>(
        {50, 100, 200, 400}, {50, 100});
    for (std::size_t streams : sizes) {
      engine::ScenarioSpec spec;
      spec.name = "cap";
      spec.params.set("streams", static_cast<int>(streams))
          .set("users", static_cast<int>(streams / 4))
          .set("budget-fraction", 0.3);
      spec.seed = 4242;
      const model::Instance inst = engine::build_scenario(spec);
      std::vector<double> costs(inst.num_streams());
      for (std::size_t s = 0; s < costs.size(); ++s)
        costs[s] = inst.cost(static_cast<model::StreamId>(s), 0);
      core::CapUtilityOracle f1(inst);
      core::CapUtilityOracle f2(inst);
      const core::SubmodularResult eager =
          core::knapsack_greedy(f1, costs, inst.budget(0), {.lazy = false});
      const core::SubmodularResult lazy =
          core::knapsack_greedy(f2, costs, inst.budget(0), {.lazy = true});
      table.row()
          .add(streams)
          .add(eager.oracle_evals)
          .add(lazy.oracle_evals)
          .add(static_cast<double>(eager.oracle_evals) /
                   static_cast<double>(std::max<std::size_t>(
                       lazy.oracle_evals, 1)),
               1)
          .add(std::abs(eager.value - lazy.value) < 1e-9 ? "yes" : "NO");
    }
    table.print_aligned(std::cout, "E12c: lazy evaluation");
  }

  // --- (d): band solver choice ---------------------------------------------
  {
    engine::SweepPlan plan;
    plan.scenarios = {{.name = "smd",
                       .params = engine::SolveOptions()
                                     .set("streams", 12)
                                     .set("users", 6),
                       .seed = 9900}};
    plan.scenario_axes = {
        {"skew", bench::axis_values(
                     bench::full_or_smoke<std::vector<double>>({4.0, 32.0},
                                                               {4.0}))}};
    plan.algorithms = {
        {.name = "bands"},
        {.name = "bands",
         .options = engine::SolveOptions().set("enum-bands", 1).set("depth", 2),
         .axes = {},
         .label = "bands-enum"}};
    plan.replicates = bench::runs(5);
    const engine::SweepResult result = engine::run_sweep(plan);
    bench::die_on_error(result);

    util::Table table({"skew", "runs", "greedy bands util", "enum bands util",
                       "uplift %", "ms greedy", "ms enum"});
    for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
      const engine::SweepCell& plain_bands = result.cell(sc, 0);
      const engine::SweepCell& enum_bands = result.cell(sc, 1);
      table.row()
          .add(plain_bands.scenario.params.get("skew", ""))
          .add(plain_bands.runs.size())
          .add(plain_bands.objective.mean(), 1)
          .add(enum_bands.objective.mean(), 1)
          .add(100.0 * (enum_bands.objective.mean() /
                            plain_bands.objective.mean() -
                        1.0),
               2)
          .add(plain_bands.wall_ms.mean(), 2)
          .add(enum_bands.wall_ms.mean(), 2);
    }
    table.print_aligned(std::cout, "E12d: band solver choice");
  }

  // --- (e): the augmentation post-pass -------------------------------------
  {
    const auto combos = bench::full_or_smoke<std::vector<std::pair<int, int>>>(
        {{2, 1}, {3, 2}, {4, 2}}, {{2, 1}});
    engine::SweepPlan plan;
    // (m, mc) moves as a *pair*, so the grid is a list of bases rather
    // than a two-axis cross-product.
    for (const auto& [m, mc] : combos)
      plan.scenarios.push_back(
          {.name = "mmd",
           .params = engine::SolveOptions()
                         .set("streams", 30)
                         .set("users", 12)
                         .set("m", m)
                         .set("mc", mc)
                         .set("budget-fraction", 0.35),
           .seed = 9990,
           .label = std::to_string(m) + "x" + std::to_string(mc)});
    plan.algorithms = {
        {.name = "pipeline",
         .options = engine::SolveOptions().set("augment", "0"),
         .axes = {},
         .label = "bare"},
        {.name = "pipeline", .options = {}, .axes = {}, .label = "augmented"}};
    plan.replicates = bench::runs(8);
    const engine::SweepResult result = engine::run_sweep(plan);
    bench::die_on_error(result);

    util::Table table({"m x mc", "runs", "bare pipeline util",
                       "augmented util", "uplift %"});
    for (std::size_t sc = 0; sc < result.num_scenario_cells; ++sc) {
      const engine::SweepCell& bare = result.cell(sc, 0);
      const engine::SweepCell& aug = result.cell(sc, 1);
      table.row()
          .add(bare.scenario_label)
          .add(bare.runs.size())
          .add(bare.objective.mean(), 1)
          .add(aug.objective.mean(), 1)
          .add(100.0 * (aug.objective.mean() / bare.objective.mean() - 1.0),
               1);
    }
    table.print_aligned(std::cout, "E12e: augmentation post-pass");
  }

  bench::print_footer(
      "the fix is load-bearing; the refined peel never hurts; laziness "
      "preserves output with fewer oracle calls; augmentation reclaims the "
      "budget the Thm 4.3 decomposition discards");
}

}  // namespace

int main() {
  run();
  return 0;
}
